//! The labeled task pool `D_t` and the online model that retrains on it.

use faction_linalg::{Matrix, SeedRng};
use faction_nn::{BatchLoss, Mlp, MlpConfig, Optimizer, Sgd, TrainOptions};

use crate::config::ExperimentConfig;

/// Retention policy for the labeled pool (DESIGN.md §11).
///
/// `Unbounded` is the paper protocol: every acquired label is kept forever.
/// The bounded policies cap the pool's memory so per-round refit cost stays
/// flat in stream length: `SlidingWindow` keeps the most recent `n` labels
/// (FIFO eviction), `Reservoir` keeps a uniform sample of the whole stream
/// via counter-based reservoir sampling (Algorithm R), so old environments
/// stay represented under drift.
///
/// Eviction order is a pure function of `(stream order, seed, policy)`: no
/// global RNG is consulted, so grid workers produce byte-identical pools
/// regardless of scheduling (`--jobs 1` ≡ `--jobs 8`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Keep every labeled sample (paper protocol).
    #[default]
    Unbounded,
    /// Keep only the `n` most recently labeled samples; older ones are
    /// evicted front-first.
    SlidingWindow(usize),
    /// Keep a uniform random sample of capacity `n` over the whole label
    /// stream, using the given sampling seed (combined with the run seed).
    Reservoir(usize, u64),
}

impl PoolPolicy {
    /// Parses a policy spec string: `unbounded`, `window:N`, or
    /// `reservoir:N[:SEED]` (seed defaults to 0 and is mixed with the run
    /// seed anyway).
    ///
    /// # Errors
    /// Returns a human-readable message when the spec is malformed or the
    /// capacity is zero.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("unbounded") {
            return Ok(PoolPolicy::Unbounded);
        }
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or("").to_ascii_lowercase();
        match head.as_str() {
            "window" => {
                let cap: usize = parts
                    .next()
                    .ok_or_else(|| format!("`{spec}`: window needs a capacity (window:N)"))?
                    .parse()
                    .map_err(|_| format!("`{spec}`: window capacity must be an integer"))?;
                if cap == 0 {
                    return Err(format!("`{spec}`: window capacity must be positive"));
                }
                if parts.next().is_some() {
                    return Err(format!("`{spec}`: too many fields for window policy"));
                }
                Ok(PoolPolicy::SlidingWindow(cap))
            }
            "reservoir" => {
                let cap: usize = parts
                    .next()
                    .ok_or_else(|| {
                        format!("`{spec}`: reservoir needs a capacity (reservoir:N[:SEED])")
                    })?
                    .parse()
                    .map_err(|_| format!("`{spec}`: reservoir capacity must be an integer"))?;
                if cap == 0 {
                    return Err(format!("`{spec}`: reservoir capacity must be positive"));
                }
                let seed: u64 = match parts.next() {
                    None => 0,
                    Some(s) => s
                        .parse()
                        .map_err(|_| format!("`{spec}`: reservoir seed must be an integer"))?,
                };
                if parts.next().is_some() {
                    return Err(format!("`{spec}`: too many fields for reservoir policy"));
                }
                Ok(PoolPolicy::Reservoir(cap, seed))
            }
            _ => Err(format!(
                "`{spec}`: unknown pool policy (expected unbounded | window:N | reservoir:N[:SEED])"
            )),
        }
    }

    /// The canonical spec string, the inverse of [`PoolPolicy::parse`].
    pub fn spec(&self) -> String {
        match self {
            PoolPolicy::Unbounded => "unbounded".to_string(),
            PoolPolicy::SlidingWindow(n) => format!("window:{n}"),
            PoolPolicy::Reservoir(n, seed) => format!("reservoir:{n}:{seed}"),
        }
    }

    /// The retention capacity, if the policy is bounded.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            PoolPolicy::Unbounded => None,
            PoolPolicy::SlidingWindow(n) | PoolPolicy::Reservoir(n, _) => Some(*n),
        }
    }
}

impl std::fmt::Display for PoolPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.spec())
    }
}

// The vendored `serde_derive` does not support enums, so the policy
// serializes as its spec string — which also keeps checkpoints readable.
impl serde::Serialize for PoolPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.spec())
    }
}

impl serde::Deserialize for PoolPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => PoolPolicy::parse(s).map_err(serde::DeError::custom),
            other => Err(serde::DeError::custom(format!(
                "expected pool policy spec string, got {other:?}"
            ))),
        }
    }
}

/// One pool membership change, in arrival order. `evicted == false` records
/// a sample entering the pool, `evicted == true` records one leaving it.
///
/// (A struct rather than an enum so the vendored `serde_derive` can handle
/// it — checkpoints serialize the pool, delta log included.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolDelta {
    /// Stable identity of the sample (assigned at push, never reused).
    pub uid: u64,
    /// True when this delta removes the sample from the pool.
    pub evicted: bool,
}

/// Bound on the retained delta log. Consumers that fall further behind than
/// this are told to re-anchor (see [`LabeledPool::deltas_since`]); keeping
/// the log bounded makes pool memory O(capacity), not O(stream).
const MAX_LOG: usize = 4096;

/// SplitMix64 finalizer: the stateless hash behind reservoir draws. Every
/// draw is a pure function of `(seed, arrival index)`, so the sample kept is
/// independent of scheduling and survives checkpoint round-trips without
/// serializing an RNG.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pool of labeled samples `D_t = {D_i^labeled}` accumulated across
/// tasks (paper Sec. IV-A), optionally bounded by a [`PoolPolicy`].
/// Sensitive attributes travel with the features (they are inputs, not
/// labels), while class labels are only added once the oracle revealed them.
///
/// Each sample carries a stable `uid`, and every membership change is
/// appended to a bounded delta log so incremental consumers (the streaming
/// GDA refit) can mirror the pool without rescanning it.
///
/// Like [`Matrix`], the side vectors carry a *tombstone offset* (`front`):
/// front eviction bumps the offset instead of memmoving every survivor,
/// and the dead prefix is reclaimed in bulk once it outnumbers the live
/// entries, so steady-state sliding-window pushes cost O(d) regardless of
/// pool size. Accessors and serialization expose only the logical view.
#[derive(Debug, Clone, Default)]
pub struct LabeledPool {
    features: Matrix,
    labels: Vec<usize>,
    sensitives: Vec<i8>,
    uids: Vec<u64>,
    /// Evicted-but-unreclaimed entries ahead of the side vectors' logical
    /// front. `features` keeps its own equivalent offset internally.
    front: usize,
    next_uid: u64,
    policy: PoolPolicy,
    eviction_seed: u64,
    seen: u64,
    log: Vec<PoolDelta>,
    log_base: u64,
}

// Serialization emits the logical view under the same field names the
// pre-tombstone derive produced, so checkpoint bytes are independent of
// eviction history and older checkpoints load unchanged (`front` is never
// written; absent fields fall back to their defaults, as the derive's
// `#[serde(default)]` attributes did).
impl serde::Serialize for LabeledPool {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("features".to_string(), serde::Serialize::to_value(&self.features)),
            ("labels".to_string(), serde::Serialize::to_value(self.labels())),
            ("sensitives".to_string(), serde::Serialize::to_value(self.sensitives())),
            ("uids".to_string(), serde::Serialize::to_value(self.uids())),
            ("next_uid".to_string(), serde::Serialize::to_value(&self.next_uid)),
            ("policy".to_string(), serde::Serialize::to_value(&self.policy)),
            ("eviction_seed".to_string(), serde::Serialize::to_value(&self.eviction_seed)),
            ("seen".to_string(), serde::Serialize::to_value(&self.seen)),
            ("log".to_string(), serde::Serialize::to_value(&self.log)),
            ("log_base".to_string(), serde::Serialize::to_value(&self.log_base)),
        ])
    }
}

impl serde::Deserialize for LabeledPool {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields =
            v.as_object().ok_or_else(|| serde::DeError::custom("expected LabeledPool object"))?;
        fn req<T: serde::Deserialize>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            let v = serde::find_field(fields, name)
                .ok_or_else(|| serde::DeError::custom(format!("LabeledPool missing `{name}`")))?;
            serde::Deserialize::from_value(v)
        }
        fn opt<T: serde::Deserialize + Default>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            match serde::find_field(fields, name) {
                Some(v) => serde::Deserialize::from_value(v),
                None => Ok(T::default()),
            }
        }
        Ok(LabeledPool {
            features: req(fields, "features")?,
            labels: req(fields, "labels")?,
            sensitives: req(fields, "sensitives")?,
            uids: opt(fields, "uids")?,
            front: 0,
            next_uid: opt(fields, "next_uid")?,
            policy: opt(fields, "policy")?,
            eviction_seed: opt(fields, "eviction_seed")?,
            seen: opt(fields, "seen")?,
            log: opt(fields, "log")?,
            log_base: opt(fields, "log_base")?,
        })
    }
}

impl LabeledPool {
    /// Creates an empty unbounded pool (the paper protocol).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool under the given retention policy. The run seed
    /// is mixed into the reservoir's sampling seed so replicate runs draw
    /// different samples while staying individually deterministic.
    pub fn with_policy(policy: PoolPolicy, run_seed: u64) -> Self {
        let policy_seed = match policy {
            PoolPolicy::Reservoir(_, s) => s,
            _ => 0,
        };
        LabeledPool {
            policy,
            eviction_seed: splitmix64(run_seed ^ splitmix64(policy_seed ^ 0x5EED_0FE7_1C71_0A01)),
            ..Self::default()
        }
    }

    /// The active retention policy.
    pub fn policy(&self) -> PoolPolicy {
        self.policy
    }

    /// Number of labeled samples currently retained.
    pub fn len(&self) -> usize {
        self.labels.len() - self.front
    }

    /// True when no samples are currently retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds one labeled sample, applying the retention policy. Under a
    /// bounded policy this may evict an older sample (or, for a full
    /// reservoir, discard the new one — that is what keeps the retained set
    /// a uniform sample). Every membership change lands in the delta log.
    ///
    /// # Panics
    /// Panics if the feature dimension disagrees with earlier samples
    /// (programming error in the protocol plumbing).
    pub fn push(&mut self, x: Vec<f64>, label: usize, sensitive: i8) {
        let uid = self.next_uid;
        self.next_uid += 1;
        self.seen += 1;
        match self.policy {
            PoolPolicy::Unbounded => self.append(&x, label, sensitive, uid),
            PoolPolicy::SlidingWindow(cap) => {
                self.append(&x, label, sensitive, uid);
                while self.len() > cap {
                    self.evict_front();
                }
            }
            PoolPolicy::Reservoir(cap, _) => {
                if self.len() < cap {
                    self.append(&x, label, sensitive, uid);
                } else {
                    // Algorithm R with a stateless draw: item `seen` replaces
                    // a uniform slot with probability cap/seen.
                    let j = splitmix64(self.eviction_seed ^ self.seen) % self.seen;
                    if (j as usize) < cap {
                        self.replace_at(j as usize, &x, label, sensitive, uid);
                    }
                    // else: the new sample is discarded without ever entering
                    // the pool — no membership change, no delta.
                }
            }
        }
    }

    fn append(&mut self, x: &[f64], label: usize, sensitive: i8, uid: u64) {
        // analyzer:allow(unwrap-in-lib): documented panic contract (see `# Panics` above)
        self.features.push_row(x).expect("pool rows share one dimension");
        self.labels.push(label);
        self.sensitives.push(sensitive);
        self.uids.push(uid);
        self.log_delta(PoolDelta { uid, evicted: false });
    }

    fn evict_front(&mut self) {
        // analyzer:allow(unwrap-in-lib): front row exists (len checked by caller)
        self.features.remove_row(0).expect("pool has a front row");
        let uid = self.uids[self.front];
        self.front += 1;
        if self.front * 2 >= self.labels.len() {
            // Dead ≥ live: reclaim the tombstoned prefix in one shot, so the
            // amortized side-vector cost per eviction stays O(1).
            self.labels.drain(..self.front);
            self.sensitives.drain(..self.front);
            self.uids.drain(..self.front);
            self.front = 0;
        }
        self.log_delta(PoolDelta { uid, evicted: true });
        faction_telemetry::counter_add("core.pool.evictions", 1);
    }

    fn replace_at(&mut self, at: usize, x: &[f64], label: usize, sensitive: i8, uid: u64) {
        let at = self.front + at;
        let old = self.uids[at];
        // `features` tracks its own tombstone, so its row index stays logical.
        self.features.row_mut(at - self.front).copy_from_slice(x);
        self.labels[at] = label;
        self.sensitives[at] = sensitive;
        self.uids[at] = uid;
        self.log_delta(PoolDelta { uid: old, evicted: true });
        self.log_delta(PoolDelta { uid, evicted: false });
        faction_telemetry::counter_add("core.pool.evictions", 1);
    }

    fn log_delta(&mut self, delta: PoolDelta) {
        self.log.push(delta);
        if self.log.len() > MAX_LOG {
            // Chunked trim: drop the older half in one shot so the amortized
            // cost per push stays O(1). Consumers whose cursor predates the
            // new base re-anchor (deltas_since returns None).
            let drop = self.log.len() / 2;
            self.log.drain(..drop);
            self.log_base += drop as u64;
        }
    }

    /// The cursor one past the latest delta. Pass this back to
    /// [`LabeledPool::deltas_since`] next round to receive only what changed
    /// in between.
    pub fn delta_head(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }

    /// The membership changes since `cursor` (a previous
    /// [`LabeledPool::delta_head`]), in arrival order. Returns `None` when
    /// the cursor has fallen off the bounded log (or is from another pool's
    /// timeline) — the consumer must then rebuild from the full pool.
    pub fn deltas_since(&self, cursor: u64) -> Option<&[PoolDelta]> {
        if cursor < self.log_base || cursor > self.delta_head() {
            return None;
        }
        Some(&self.log[(cursor - self.log_base) as usize..])
    }

    /// Stable identities of the retained samples, aligned with
    /// [`LabeledPool::labels`] / row order of [`LabeledPool::features`].
    pub fn uids(&self) -> &[u64] {
        &self.uids[self.front..]
    }

    /// Current row index of the sample with the given uid, if retained.
    pub fn index_of_uid(&self, uid: u64) -> Option<usize> {
        self.uids().iter().position(|&u| u == uid)
    }

    /// The pooled features as an `(n, d)` matrix. The matrix is maintained
    /// incrementally as samples arrive, so this is a free borrow — the
    /// selection and retraining hot paths no longer re-stack the pool every
    /// acquisition round.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Labels of the pooled samples.
    pub fn labels(&self) -> &[usize] {
        &self.labels[self.front..]
    }

    /// Sensitive attributes of the pooled samples.
    pub fn sensitives(&self) -> &[i8] {
        &self.sensitives[self.front..]
    }

    /// Count of samples in the sensitive group `s`.
    pub fn group_count(&self, s: i8) -> usize {
        self.sensitives().iter().filter(|&&v| v == s).count()
    }

    /// Count of samples with label `y`.
    pub fn label_count(&self, y: usize) -> usize {
        self.labels().iter().filter(|&&v| v == y).count()
    }
}

/// The learner's model: an MLP retrained from its current parameters on the
/// full pool at every AL iteration (Algorithm 1, lines 7–8 — parameters
/// `θ_temp` warm-start from the previous iteration, matching the online
/// protocol where `θ_t` evolves rather than restarting).
#[derive(Debug)]
pub struct OnlineModel {
    mlp: Mlp,
    optimizer: Sgd,
    train: TrainOptions,
    rng: SeedRng,
}

impl OnlineModel {
    /// Builds a model from an architecture config and experiment settings.
    pub fn new(arch: &MlpConfig, cfg: &ExperimentConfig, seed: u64) -> Self {
        OnlineModel {
            mlp: Mlp::new(arch),
            optimizer: Sgd::new(cfg.learning_rate).with_momentum(0.9),
            train: TrainOptions {
                epochs: cfg.epochs_per_iteration,
                batch_size: cfg.train_batch_size,
            },
            rng: SeedRng::new(seed ^ 0x0111_11E5_EED0_0001),
        }
    }

    /// Retrains on the pool with the supplied loss. No-op on an empty pool.
    /// Returns the final epoch's mean loss.
    pub fn retrain(&mut self, pool: &LabeledPool, loss: &dyn BatchLoss) -> f64 {
        if pool.is_empty() {
            return 0.0;
        }
        faction_telemetry::counter_add("core.model.retrains", 1);
        faction_telemetry::observe("core.model.retrain_pool_rows", pool.len() as u64);
        let losses = self.mlp.fit(
            pool.features(),
            pool.labels(),
            pool.sensitives(),
            loss,
            &mut self.optimizer,
            &self.train,
            &mut self.rng,
        );
        losses.last().copied().unwrap_or(0.0)
    }

    /// Borrow the underlying network (feature extraction, prediction).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Replaces the learning rate (decaying-γ schedules in the theory
    /// harness).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.optimizer.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faction_nn::CrossEntropyLoss;

    #[test]
    fn pool_accumulates() {
        let mut pool = LabeledPool::new();
        assert!(pool.is_empty());
        pool.push(vec![1.0, 2.0], 1, 1);
        pool.push(vec![3.0, 4.0], 0, -1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.labels(), &[1, 0]);
        assert_eq!(pool.sensitives(), &[1, -1]);
        assert_eq!(pool.group_count(1), 1);
        assert_eq!(pool.label_count(0), 1);
        assert_eq!(pool.features().shape(), (2, 2));
    }

    #[test]
    fn policy_spec_round_trips() {
        for (spec, policy) in [
            ("unbounded", PoolPolicy::Unbounded),
            ("window:64", PoolPolicy::SlidingWindow(64)),
            ("reservoir:128:7", PoolPolicy::Reservoir(128, 7)),
        ] {
            let parsed = PoolPolicy::parse(spec).unwrap();
            assert_eq!(parsed, policy);
            assert_eq!(parsed.spec(), spec);
            assert_eq!(PoolPolicy::parse(&parsed.spec()).unwrap(), parsed);
        }
        // Seed defaults to 0 when omitted; whitespace and case are forgiven.
        assert_eq!(PoolPolicy::parse("reservoir:9").unwrap(), PoolPolicy::Reservoir(9, 0));
        assert_eq!(PoolPolicy::parse(" Unbounded ").unwrap(), PoolPolicy::Unbounded);
        for bad in ["window", "window:0", "window:x", "reservoir:0", "lru:4", "window:4:9"] {
            assert!(PoolPolicy::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn policy_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        for policy in [
            PoolPolicy::Unbounded,
            PoolPolicy::SlidingWindow(5),
            PoolPolicy::Reservoir(3, 11),
        ] {
            assert_eq!(PoolPolicy::from_value(&policy.to_value()).unwrap(), policy);
        }
        assert!(PoolPolicy::from_value(&serde::Value::Int(3)).is_err());
    }

    #[test]
    fn sliding_window_evicts_front_and_logs_deltas() {
        let mut pool = LabeledPool::with_policy(PoolPolicy::SlidingWindow(3), 1);
        for i in 0..5 {
            pool.push(vec![i as f64, 0.0], i % 2, 1);
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.uids(), &[2, 3, 4]);
        assert_eq!(pool.features().get(0, 0), 2.0);
        // Arrival order: 5 adds interleaved with 2 evictions (of uids 0, 1).
        let deltas = pool.deltas_since(0).unwrap();
        assert_eq!(deltas.len(), 7);
        assert_eq!(
            deltas.iter().filter(|d| d.evicted).map(|d| d.uid).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(pool.delta_head(), 7);
        assert_eq!(pool.deltas_since(pool.delta_head()).unwrap(), &[]);
        assert_eq!(pool.index_of_uid(3), Some(1));
        assert_eq!(pool.index_of_uid(0), None);
    }

    #[test]
    fn reservoir_is_capped_uniformish_and_deterministic() {
        let run = |run_seed: u64| {
            let mut pool = LabeledPool::with_policy(PoolPolicy::Reservoir(16, 9), run_seed);
            for i in 0..400 {
                pool.push(vec![i as f64], 0, 1);
            }
            pool
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert_eq!(a.len(), 16);
        assert_eq!(a.uids(), b.uids(), "same seeds must keep the same sample");
        assert_ne!(a.uids(), c.uids(), "different run seeds should diverge");
        // A uniform sample of 0..400 should not be the most recent items
        // only, and should reach into the early stream.
        assert!(a.uids().iter().any(|&u| u < 200));
        assert!(a.uids().iter().any(|&u| u >= 200));
        // Replayed deltas reproduce the retained uid set.
        let mut mirror: Vec<u64> = Vec::new();
        for d in a.deltas_since(0).unwrap() {
            if d.evicted {
                mirror.retain(|&u| u != d.uid);
            } else {
                mirror.push(d.uid);
            }
        }
        let mut kept = a.uids().to_vec();
        kept.sort_unstable();
        mirror.sort_unstable();
        assert_eq!(mirror, kept);
    }

    #[test]
    fn delta_log_trims_and_invalidates_stale_cursors() {
        let mut pool = LabeledPool::with_policy(PoolPolicy::SlidingWindow(4), 2);
        // Each push past the window logs 2 deltas, so this overflows MAX_LOG.
        for i in 0..3000 {
            pool.push(vec![i as f64], 0, 1);
        }
        assert!(pool.deltas_since(0).is_none(), "ancient cursor must force a re-anchor");
        assert!(pool.deltas_since(pool.delta_head() + 1).is_none());
        let head = pool.delta_head();
        pool.push(vec![0.5], 1, -1);
        let fresh = pool.deltas_since(head).unwrap();
        assert_eq!(fresh.len(), 2); // one add + one evict
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn pool_state_survives_serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let mut pool = LabeledPool::with_policy(PoolPolicy::Reservoir(8, 3), 7);
        for i in 0..40 {
            pool.push(vec![i as f64, -(i as f64)], i % 2, if i % 3 == 0 { -1 } else { 1 });
        }
        let restored = LabeledPool::from_value(&pool.to_value()).unwrap();
        assert_eq!(restored.uids(), pool.uids());
        assert_eq!(restored.labels(), pool.labels());
        assert_eq!(restored.delta_head(), pool.delta_head());
        assert_eq!(restored.policy(), pool.policy());
        // The restored pool continues the exact same eviction timeline.
        let mut a = pool.clone();
        let mut b = restored;
        for i in 40..120 {
            a.push(vec![i as f64, 0.0], 0, 1);
            b.push(vec![i as f64, 0.0], 0, 1);
        }
        assert_eq!(a.uids(), b.uids());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn tombstoned_side_vectors_expose_only_the_logical_view() {
        use serde::{Deserialize, Serialize};
        // Drive a window pool deep into eviction so the side-vector
        // tombstone is live mid-cycle, then compare every observable —
        // accessors, counts, uid lookup, and serialized bytes — against a
        // pool built fresh in the same logical state.
        let mut evicted = LabeledPool::with_policy(PoolPolicy::SlidingWindow(5), 9);
        for i in 0..23 {
            evicted.push(vec![i as f64, 1.0], i % 3, if i % 2 == 0 { 1 } else { -1 });
        }
        assert!(evicted.front > 0, "test must exercise a live tombstone");
        assert_eq!(evicted.len(), 5);
        assert_eq!(evicted.labels().len(), 5);
        assert_eq!(evicted.uids(), &[18, 19, 20, 21, 22]);
        assert_eq!(evicted.index_of_uid(20), Some(2));
        assert_eq!(evicted.group_count(1) + evicted.group_count(-1), 5);
        assert_eq!(
            evicted.label_count(0) + evicted.label_count(1) + evicted.label_count(2),
            5
        );
        // Serialization must not leak the dead prefix: byte-compare against
        // a fresh pool holding the same five rows with the same uids/log.
        let restored = LabeledPool::from_value(&evicted.to_value()).unwrap();
        assert_eq!(restored.front, 0, "deserialize compacts");
        assert_eq!(restored.labels(), evicted.labels());
        assert_eq!(restored.sensitives(), evicted.sensitives());
        assert_eq!(restored.uids(), evicted.uids());
        assert_eq!(restored.features().as_slice(), evicted.features().as_slice());
        assert_eq!(
            serde_json::to_string(&restored.to_value()),
            serde_json::to_string(&evicted.to_value()),
            "checkpoint bytes must be independent of eviction history"
        );
        // And the timelines stay fused after the round trip.
        let mut a = evicted.clone();
        let mut b = restored;
        for i in 23..60 {
            a.push(vec![i as f64, 2.0], 0, 1);
            b.push(vec![i as f64, 2.0], 0, 1);
        }
        assert_eq!(a.uids(), b.uids());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn retrain_on_empty_pool_is_noop() {
        let cfg = ExperimentConfig::quick();
        let arch = faction_nn::presets::tiny(2, 2, 0);
        let mut model = OnlineModel::new(&arch, &cfg, 1);
        let before = model.mlp().predict_proba(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap());
        assert_eq!(model.retrain(&LabeledPool::new(), &CrossEntropyLoss), 0.0);
        let after = model.mlp().predict_proba(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap());
        assert_eq!(before, after);
    }

    #[test]
    fn retrain_improves_fit() {
        let mut pool = LabeledPool::new();
        let mut rng = SeedRng::new(3);
        for _ in 0..60 {
            let y = usize::from(rng.bernoulli(0.5));
            let c = if y == 1 { 2.0 } else { -2.0 };
            pool.push(vec![rng.normal(c, 0.4), rng.normal(c, 0.4)], y, 1);
        }
        let cfg = ExperimentConfig::quick();
        let arch = faction_nn::presets::tiny(2, 2, 0);
        let mut model = OnlineModel::new(&arch, &cfg, 1);
        let mut last = f64::INFINITY;
        for _ in 0..6 {
            last = model.retrain(&pool, &CrossEntropyLoss);
        }
        assert!(last < 0.2, "loss after repeated retraining {last}");
        let preds = model.mlp().predict(pool.features());
        let acc = faction_fairness::accuracy(&preds, pool.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
