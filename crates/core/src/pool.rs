//! The labeled task pool `D_t` and the online model that retrains on it.

use faction_linalg::{Matrix, SeedRng};
use faction_nn::{BatchLoss, Mlp, MlpConfig, Optimizer, Sgd, TrainOptions};

use crate::config::ExperimentConfig;

/// The growing pool of labeled samples `D_t = {D_i^labeled}` accumulated
/// across tasks (paper Sec. IV-A). Sensitive attributes travel with the
/// features (they are inputs, not labels), while class labels are only added
/// once the oracle revealed them.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct LabeledPool {
    features: Matrix,
    labels: Vec<usize>,
    sensitives: Vec<i8>,
}

impl LabeledPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of labeled samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no samples have been labeled yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds one labeled sample.
    ///
    /// # Panics
    /// Panics if the feature dimension disagrees with earlier samples
    /// (programming error in the protocol plumbing).
    pub fn push(&mut self, x: Vec<f64>, label: usize, sensitive: i8) {
        // analyzer:allow(unwrap-in-lib): documented panic contract (see `# Panics` above)
        self.features.push_row(&x).expect("pool rows share one dimension");
        self.labels.push(label);
        self.sensitives.push(sensitive);
    }

    /// The pooled features as an `(n, d)` matrix. The matrix is maintained
    /// incrementally as samples arrive, so this is a free borrow — the
    /// selection and retraining hot paths no longer re-stack the pool every
    /// acquisition round.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Labels of the pooled samples.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sensitive attributes of the pooled samples.
    pub fn sensitives(&self) -> &[i8] {
        &self.sensitives
    }

    /// Count of samples in the sensitive group `s`.
    pub fn group_count(&self, s: i8) -> usize {
        self.sensitives.iter().filter(|&&v| v == s).count()
    }

    /// Count of samples with label `y`.
    pub fn label_count(&self, y: usize) -> usize {
        self.labels.iter().filter(|&&v| v == y).count()
    }
}

/// The learner's model: an MLP retrained from its current parameters on the
/// full pool at every AL iteration (Algorithm 1, lines 7–8 — parameters
/// `θ_temp` warm-start from the previous iteration, matching the online
/// protocol where `θ_t` evolves rather than restarting).
#[derive(Debug)]
pub struct OnlineModel {
    mlp: Mlp,
    optimizer: Sgd,
    train: TrainOptions,
    rng: SeedRng,
}

impl OnlineModel {
    /// Builds a model from an architecture config and experiment settings.
    pub fn new(arch: &MlpConfig, cfg: &ExperimentConfig, seed: u64) -> Self {
        OnlineModel {
            mlp: Mlp::new(arch),
            optimizer: Sgd::new(cfg.learning_rate).with_momentum(0.9),
            train: TrainOptions {
                epochs: cfg.epochs_per_iteration,
                batch_size: cfg.train_batch_size,
            },
            rng: SeedRng::new(seed ^ 0x0111_11E5_EED0_0001),
        }
    }

    /// Retrains on the pool with the supplied loss. No-op on an empty pool.
    /// Returns the final epoch's mean loss.
    pub fn retrain(&mut self, pool: &LabeledPool, loss: &dyn BatchLoss) -> f64 {
        if pool.is_empty() {
            return 0.0;
        }
        faction_telemetry::counter_add("core.model.retrains", 1);
        faction_telemetry::observe("core.model.retrain_pool_rows", pool.len() as u64);
        let losses = self.mlp.fit(
            pool.features(),
            pool.labels(),
            pool.sensitives(),
            loss,
            &mut self.optimizer,
            &self.train,
            &mut self.rng,
        );
        losses.last().copied().unwrap_or(0.0)
    }

    /// Borrow the underlying network (feature extraction, prediction).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Replaces the learning rate (decaying-γ schedules in the theory
    /// harness).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.optimizer.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faction_nn::CrossEntropyLoss;

    #[test]
    fn pool_accumulates() {
        let mut pool = LabeledPool::new();
        assert!(pool.is_empty());
        pool.push(vec![1.0, 2.0], 1, 1);
        pool.push(vec![3.0, 4.0], 0, -1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.labels(), &[1, 0]);
        assert_eq!(pool.sensitives(), &[1, -1]);
        assert_eq!(pool.group_count(1), 1);
        assert_eq!(pool.label_count(0), 1);
        assert_eq!(pool.features().shape(), (2, 2));
    }

    #[test]
    fn retrain_on_empty_pool_is_noop() {
        let cfg = ExperimentConfig::quick();
        let arch = faction_nn::presets::tiny(2, 2, 0);
        let mut model = OnlineModel::new(&arch, &cfg, 1);
        let before = model.mlp().predict_proba(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap());
        assert_eq!(model.retrain(&LabeledPool::new(), &CrossEntropyLoss), 0.0);
        let after = model.mlp().predict_proba(&Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap());
        assert_eq!(before, after);
    }

    #[test]
    fn retrain_improves_fit() {
        let mut pool = LabeledPool::new();
        let mut rng = SeedRng::new(3);
        for _ in 0..60 {
            let y = usize::from(rng.bernoulli(0.5));
            let c = if y == 1 { 2.0 } else { -2.0 };
            pool.push(vec![rng.normal(c, 0.4), rng.normal(c, 0.4)], y, 1);
        }
        let cfg = ExperimentConfig::quick();
        let arch = faction_nn::presets::tiny(2, 2, 0);
        let mut model = OnlineModel::new(&arch, &cfg, 1);
        let mut last = f64::INFINITY;
        for _ in 0..6 {
            last = model.retrain(&pool, &CrossEntropyLoss);
        }
        assert!(last < 0.2, "loss after repeated retraining {last}");
        let preds = model.mlp().predict(pool.features());
        let acc = faction_fairness::accuracy(&preds, pool.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
