//! The sequential Fair Active Online Learning protocol driver
//! (paper Sec. IV-A and Algorithm 1).
//!
//! For every incoming task the runner first records the previous model's
//! performance on the *entire* unlabeled task (Algorithm 1, line 4 — "the
//! full dataset is used for evaluation", Sec. V-A3), then spends the label
//! budget `B` in acquisition batches of size `A`: score the remaining
//! unlabeled samples with the strategy, acquire a batch (Bernoulli trials or
//! top-K), query the oracle, grow the pool, retrain. Timing of the
//! selection and training phases is recorded separately to reproduce the
//! runtime decomposition of Fig. 5 / Table I.

use faction_data::{Oracle, Sample, Task, TaskStream};
use faction_linalg::{vector, Matrix, SeedRng};
use faction_nn::MlpConfig;
use faction_telemetry::{self as telemetry, Clock};
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::pool::{LabeledPool, OnlineModel};
use crate::selection::acquire;
use crate::strategies::{SelectionContext, Strategy};

/// Metrics recorded for one task, *before* the learner adapts to it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task position `t`.
    pub task_id: usize,
    /// Environment name the task was drawn from.
    pub env_name: String,
    /// Accuracy of `θ_{t−1}` on the incoming task (higher is better).
    pub accuracy: f64,
    /// Demographic-parity difference (lower is better).
    pub ddp: f64,
    /// Equalized-odds difference (lower is better).
    pub eod: f64,
    /// Mutual information between predictions and the sensitive attribute
    /// (lower is better).
    pub mi: f64,
    /// Group-calibration gap: absolute difference of per-group expected
    /// calibration errors (an auxiliary fairness diagnostic from the fair
    /// online-learning literature the paper builds on; zero is best).
    #[serde(default)]
    pub calibration_gap: f64,
    /// Oracle queries consumed on this task.
    pub queries: usize,
    /// Wall-clock seconds spent on this task in total.
    pub seconds: f64,
    /// Seconds spent in the selection strategy (scoring + acquisition).
    pub selection_seconds: f64,
    /// Seconds spent retraining on the pool.
    pub training_seconds: f64,
}

/// One full pass of a strategy over a task stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Strategy display name.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Per-task records in stream order.
    pub records: Vec<TaskRecord>,
    /// Total wall-clock seconds for the whole stream.
    pub total_seconds: f64,
}

impl RunRecord {
    /// Mean of a metric across all tasks (the Table I presentation).
    pub fn mean_of(&self, metric: impl Fn(&TaskRecord) -> f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(&metric).sum::<f64>() / self.records.len() as f64
    }

    /// A copy with every wall-clock timing field zeroed.
    ///
    /// Timing fields (`total_seconds`, per-task `seconds` /
    /// `selection_seconds` / `training_seconds`) are *measurement output*:
    /// they vary run to run and machine to machine by construction. Every
    /// algorithmic field — metrics, queries, environments, ordering — is a
    /// pure function of `(dataset, strategy, seed, config)`. Canonicalizing
    /// makes that contract checkable: serialized canonical records of the
    /// same grid must be byte-identical whether the grid ran sequentially
    /// or on eight engine workers.
    pub fn canonicalized(&self) -> RunRecord {
        let mut out = self.clone();
        out.total_seconds = 0.0;
        for r in &mut out.records {
            r.seconds = 0.0;
            r.selection_seconds = 0.0;
            r.training_seconds = 0.0;
        }
        out
    }
}

/// Evaluates the current model on a full task.
///
/// Uses the multi-group metric generalizations from
/// [`faction_fairness::multi`], which reduce exactly to the paper's binary
/// DDP / EOD / MI when the stream has two sensitive groups — so the same
/// runner drives both the paper's binary benchmarks and multi-valued
/// sensitive-attribute streams (Sec. III-A extension).
///
/// The calibration gap is group calibration of the positive-class
/// probability in the binary case. With more than two classes there is no
/// "positive class", so it generalizes to *confidence calibration*: the
/// predicted class's probability against the correctness indicator
/// (`pred == label`), which reduces to the binary definition up to class
/// symmetry. Non-finite feature entries are scrubbed to `0.0` before the
/// forward pass — the model never consumes NaN/Inf (DESIGN.md §10).
fn evaluate(model: &OnlineModel, task: &Task) -> (f64, f64, f64, f64, f64) {
    let mut x = task.features();
    let scrubbed = x.sanitize_non_finite();
    if scrubbed > 0 {
        telemetry::counter_add("core.runner.sanitized_values", scrubbed as u64);
    }
    let preds = model.mlp().predict(&x);
    let probs = model.mlp().predict_proba(&x);
    let labels = task.labels();
    let sens = task.sensitives();
    let calibration_gap = if probs.cols() > 2 {
        let confidence: Vec<f64> =
            (0..probs.rows()).map(|r| probs.get(r, preds[r])).collect();
        let correct: Vec<usize> =
            preds.iter().zip(&labels).map(|(p, l)| usize::from(p == l)).collect();
        faction_fairness::calibration::group_calibration_gap(&confidence, &correct, &sens, 10)
    } else {
        let positive: Vec<f64> = (0..probs.rows()).map(|r| probs.get(r, 1)).collect();
        faction_fairness::calibration::group_calibration_gap(&positive, &labels, &sens, 10)
    };
    (
        faction_fairness::accuracy(&preds, &labels),
        faction_fairness::multi::ddp_multi(&preds, &sens),
        faction_fairness::multi::eod_multi(&preds, &labels, &sens),
        faction_fairness::multi::mutual_information_multi(&preds, &sens),
        calibration_gap,
    )
}

/// Clones a sample's feature vector with non-finite entries scrubbed to
/// `0.0` (counted in `core.runner.sanitized_values`), so the labeled pool —
/// and therefore every retrain — never consumes NaN/Inf. A clean sample
/// pays exactly the clone it always paid.
fn sanitized_features(s: &Sample) -> Vec<f64> {
    let mut x = s.x.clone();
    let scrubbed = vector::sanitize_scores(&mut x);
    if scrubbed > 0 {
        telemetry::counter_add("core.runner.sanitized_values", scrubbed as u64);
    }
    x
}

/// Runs one strategy over one stream with one seed (Algorithm 1).
///
/// `arch` is the feature-extractor architecture shared by all methods in a
/// comparison (Sec. V-A3). The warm start draws
/// [`ExperimentConfig::warm_start`] random labeled samples from the first
/// task before the protocol begins; those samples are excluded from the
/// first task's query candidates and do not count against its budget.
pub fn run_experiment(
    stream: &TaskStream,
    strategy: &mut dyn Strategy,
    arch: &MlpConfig,
    cfg: &ExperimentConfig,
    seed: u64,
) -> RunRecord {
    // Wall-clock in this function is *measured output* for the Fig. 5
    // runtime decomposition; it never feeds control flow, so algorithmic
    // results stay seed-deterministic. All reads go through the telemetry
    // Clock — the workspace's sanctioned wall-clock boundary.
    let run_start = Clock::start();
    telemetry::counter_add("core.runner.runs", 1);
    let mut rng = SeedRng::new(seed ^ 0x5EED_F00D);
    let mut pool = LabeledPool::with_policy(cfg.pool_policy, seed);
    let mut model = OnlineModel::new(arch, cfg, seed);
    let loss = strategy.training_loss();

    let mut records = Vec::with_capacity(stream.len());
    let mut warm_indices: Vec<usize> = Vec::new();
    if let Some(first) = stream.tasks.first() {
        warm_indices = rng.sample_indices(first.len(), cfg.warm_start.min(first.len()));
        for &i in &warm_indices {
            let s = &first.samples[i];
            pool.push(sanitized_features(s), s.label, s.sensitive);
        }
        let warm_train = Clock::start();
        model.retrain(&pool, loss.as_ref());
        telemetry::observe_duration("core.runner.train_ns", warm_train.elapsed());
    }

    // Buffers reused across every acquisition round of every task.
    let mut candidates = Matrix::default();
    let mut candidate_sensitives: Vec<i8> = Vec::new();

    for task in &stream.tasks {
        let task_start = Clock::start();
        telemetry::counter_add("core.runner.tasks", 1);
        let eval_clock = Clock::start();
        let (accuracy, ddp, eod, mi, calibration_gap) = evaluate(&model, task);
        telemetry::observe_duration("core.runner.eval_ns", eval_clock.elapsed());

        // Unlabeled candidates (warm-start samples excluded on task 0). A
        // boolean mask keeps the exclusion O(n + w) — probing the warm list
        // per candidate made warm-up quadratic in the warm-start size.
        let mut unlabeled: Vec<usize> = if task.id == 0 {
            let mut is_warm = vec![false; task.len()];
            for &i in &warm_indices {
                is_warm[i] = true;
            }
            (0..task.len()).filter(|&i| !is_warm[i]).collect()
        } else {
            (0..task.len()).collect()
        };
        let mut oracle = Oracle::new(task, cfg.budget);
        let mut selection_seconds = 0.0;
        let mut training_seconds = 0.0;

        while oracle.remaining() > 0 && !unlabeled.is_empty() {
            // Score the remaining candidates with θ from the last retrain.
            // The candidate feature/sensitive buffers are reused across
            // rounds — the unlabeled set only shrinks, so after round one
            // these fills allocate nothing.
            let select_start = Clock::start();
            telemetry::counter_add("core.runner.rounds", 1);
            let desirability;
            let picked_local;
            {
                // Scoring sub-phase: feature extraction + strategy
                // desirability (for FACTION this nests the GDA fit/score
                // spans recorded inside the strategy itself).
                let _score_span = telemetry::span("core.runner.score_ns");
                task.features_of_into(&unlabeled, &mut candidates);
                let scrubbed = candidates.sanitize_non_finite();
                if scrubbed > 0 {
                    telemetry::counter_add("core.runner.sanitized_values", scrubbed as u64);
                }
                candidate_sensitives.clear();
                candidate_sensitives.extend(unlabeled.iter().map(|&i| task.samples[i].sensitive));
                let ctx = SelectionContext {
                    model: &model,
                    pool: &pool,
                    candidates: &candidates,
                    candidate_sensitives: &candidate_sensitives,
                    num_classes: stream.num_classes,
                };
                // Degradation boundary (DESIGN.md §10): a strategy that
                // panics, returns the wrong number of scores, or emits
                // non-finite desirability forfeits *this round only* — the
                // protocol falls back to uniform-random desirability so the
                // budget is still spent, and the event is counted. The
                // fallback draws from `rng` only on the degraded branch, so
                // healthy runs consume the exact same random stream as
                // before the guard existed.
                let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    strategy.desirability(&ctx, &mut rng)
                }));
                desirability = match scored {
                    Ok(w) if w.len() == unlabeled.len() && w.iter().all(|v| v.is_finite()) => w,
                    _ => {
                        telemetry::counter_add("core.runner.degraded_rounds", 1);
                        (0..unlabeled.len()).map(|_| rng.uniform()).collect()
                    }
                };
            }
            let batch = cfg
                .acquisition_batch
                .min(oracle.remaining())
                .min(unlabeled.len());
            {
                // Query-decision sub-phase: which candidates get the budget.
                let _acquire_span = telemetry::span("core.runner.acquire_ns");
                picked_local = acquire(&desirability, batch, strategy.mode(), &mut rng);
            }
            let select_elapsed = select_start.elapsed();
            selection_seconds += select_elapsed.as_secs_f64();
            telemetry::observe_duration("core.runner.selection_ns", select_elapsed);

            // Query the oracle and grow the pool.
            let mut picked_global: Vec<usize> =
                picked_local.iter().map(|&l| unlabeled[l]).collect();
            picked_global.sort_unstable();
            let record_fairness = telemetry::recording();
            for &g in &picked_global {
                if let Some(label) = oracle.query(g) {
                    let s = &task.samples[g];
                    if record_fairness {
                        // Per-(class, sensitive-group) label accounting —
                        // the FairSBS-style decision-rate view of the
                        // acquired labels. Key formatting is gated on an
                        // enabled recorder so the no-op path allocates
                        // nothing.
                        telemetry::counter_add("core.oracle.queries", 1);
                        telemetry::counter_add(
                            &format!("core.fairness.labeled_y{}_s{}", label, s.sensitive),
                            1,
                        );
                    }
                    pool.push(sanitized_features(s), label, s.sensitive);
                }
            }
            // `unlabeled` is kept sorted ascending (it starts that way and
            // `retain` preserves order) and `picked_global` was just sorted,
            // so a two-pointer merge removes the batch in O(n + k) — the
            // `contains` probe per survivor made every round quadratic.
            let mut next_pick = 0usize;
            unlabeled.retain(|&i| {
                while next_pick < picked_global.len() && picked_global[next_pick] < i {
                    next_pick += 1;
                }
                !(next_pick < picked_global.len() && picked_global[next_pick] == i)
            });

            // Retrain on the enlarged pool (Algorithm 1, lines 7–8).
            let train_start = Clock::start();
            model.retrain(&pool, loss.as_ref());
            let train_elapsed = train_start.elapsed();
            training_seconds += train_elapsed.as_secs_f64();
            telemetry::observe_duration("core.runner.train_ns", train_elapsed);
        }

        records.push(TaskRecord {
            task_id: task.id,
            env_name: task.env_name.clone(),
            accuracy,
            ddp,
            eod,
            mi,
            calibration_gap,
            queries: oracle.queries_made(),
            seconds: task_start.elapsed().as_secs_f64(),
            selection_seconds,
            training_seconds,
        });
    }

    RunRecord {
        strategy: strategy.name(),
        dataset: stream.name.clone(),
        seed,
        records,
        total_seconds: run_start.elapsed().as_secs_f64(),
    }
}

/// Convenience helper: evaluates a model on an arbitrary feature/label/
/// sensitive triple (used by harnesses for held-out probes).
pub fn evaluate_on(
    model: &OnlineModel,
    x: &Matrix,
    labels: &[usize],
    sensitives: &[i8],
) -> (f64, f64, f64, f64) {
    let preds = model.mlp().predict(x);
    (
        faction_fairness::accuracy(&preds, labels),
        faction_fairness::ddp(&preds, sensitives),
        faction_fairness::eod(&preds, labels, sensitives),
        faction_fairness::mutual_information(&preds, sensitives),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{EntropyAl, Random};
    use faction_data::{datasets, Scale};

    fn tiny_stream() -> TaskStream {
        // Two small tasks from the RCMNIST generator at quick scale, but
        // truncated further for unit-test speed.
        let mut stream = datasets::rcmnist(1, Scale::Quick);
        stream.tasks.truncate(2);
        for (i, t) in stream.tasks.iter_mut().enumerate() {
            t.samples.truncate(80);
            t.id = i;
        }
        stream
    }

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            budget: 20,
            acquisition_batch: 10,
            warm_start: 20,
            epochs_per_iteration: 2,
            train_batch_size: 32,
            learning_rate: 0.05,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn protocol_respects_budget_and_counts() {
        let stream = tiny_stream();
        let cfg = tiny_cfg();
        let arch = faction_nn::presets::tiny(stream.input_dim, 2, 0);
        let mut strategy = Random;
        let record = run_experiment(&stream, &mut strategy, &arch, &cfg, 7);
        assert_eq!(record.records.len(), 2);
        for r in &record.records {
            assert!(r.queries <= cfg.budget, "task {} queried {}", r.task_id, r.queries);
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert!((0.0..=1.0).contains(&r.ddp));
            assert!((0.0..=1.0).contains(&r.eod));
            assert!(r.mi >= 0.0);
            assert!(r.seconds >= r.selection_seconds + r.training_seconds - 1e-6);
        }
        assert_eq!(record.strategy, "Random");
        assert_eq!(record.dataset, "RCMNIST");
    }

    #[test]
    fn budget_not_divisible_by_batch_is_fully_spent() {
        // 7 = 2×3 + 1: the last round must shrink its batch to the single
        // remaining query, and the oracle's accounting must land exactly on
        // the budget with candidates to spare.
        let stream = tiny_stream();
        let cfg = ExperimentConfig { budget: 7, acquisition_batch: 3, ..tiny_cfg() };
        let arch = faction_nn::presets::tiny(stream.input_dim, 2, 0);
        let record = run_experiment(&stream, &mut Random, &arch, &cfg, 5);
        for r in &record.records {
            assert_eq!(r.queries, 7, "task {} spent {} of 7", r.task_id, r.queries);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = tiny_stream();
        let cfg = tiny_cfg();
        let arch = faction_nn::presets::tiny(stream.input_dim, 2, 0);
        let a = run_experiment(&stream, &mut EntropyAl, &arch, &cfg, 3);
        let b = run_experiment(&stream, &mut EntropyAl, &arch, &cfg, 3);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.accuracy, rb.accuracy);
            assert_eq!(ra.ddp, rb.ddp);
            assert_eq!(ra.queries, rb.queries);
        }
    }

    #[test]
    fn learning_improves_over_random_init() {
        // Accuracy on the second task (after adapting to the first) must
        // beat chance on this separable stream.
        let stream = tiny_stream();
        let cfg = tiny_cfg();
        let arch = faction_nn::presets::tiny(stream.input_dim, 2, 0);
        let record = run_experiment(&stream, &mut EntropyAl, &arch, &cfg, 11);
        assert!(
            record.records[1].accuracy > 0.6,
            "second-task accuracy {}",
            record.records[1].accuracy
        );
    }

    #[test]
    fn mean_of_averages_metrics() {
        let record = RunRecord {
            strategy: "X".into(),
            dataset: "Y".into(),
            seed: 0,
            records: vec![
                TaskRecord {
                    task_id: 0,
                    env_name: "a".into(),
                    accuracy: 0.5,
                    ddp: 0.2,
                    eod: 0.0,
                    mi: 0.0,
                    calibration_gap: 0.0,
                    queries: 1,
                    seconds: 0.0,
                    selection_seconds: 0.0,
                    training_seconds: 0.0,
                },
                TaskRecord {
                    task_id: 1,
                    env_name: "b".into(),
                    accuracy: 0.7,
                    ddp: 0.4,
                    eod: 0.0,
                    mi: 0.0,
                    calibration_gap: 0.0,
                    queries: 1,
                    seconds: 0.0,
                    selection_seconds: 0.0,
                    training_seconds: 0.0,
                },
            ],
            total_seconds: 0.0,
        };
        assert!((record.mean_of(|r| r.accuracy) - 0.6).abs() < 1e-12);
        assert!((record.mean_of(|r| r.ddp) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn canonicalized_zeroes_only_timing() {
        let stream = tiny_stream();
        let cfg = tiny_cfg();
        let arch = faction_nn::presets::tiny(stream.input_dim, 2, 0);
        let record = run_experiment(&stream, &mut EntropyAl, &arch, &cfg, 3);
        let canon = record.canonicalized();
        assert_eq!(canon.total_seconds, 0.0);
        for (orig, c) in record.records.iter().zip(&canon.records) {
            assert_eq!(c.seconds, 0.0);
            assert_eq!(c.selection_seconds, 0.0);
            assert_eq!(c.training_seconds, 0.0);
            assert_eq!(orig.accuracy, c.accuracy);
            assert_eq!(orig.ddp, c.ddp);
            assert_eq!(orig.eod, c.eod);
            assert_eq!(orig.mi, c.mi);
            assert_eq!(orig.queries, c.queries);
            assert_eq!(orig.env_name, c.env_name);
        }
        // Canonical serialization of two identically-seeded runs is
        // byte-identical even though their wall-clock timings differ.
        let again = run_experiment(&stream, &mut EntropyAl, &arch, &cfg, 3);
        assert_eq!(
            serde_json::to_string(&canon).unwrap(),
            serde_json::to_string(&again.canonicalized()).unwrap()
        );
    }
}
