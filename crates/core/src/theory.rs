//! Empirical validation of Theorem 1 (paper Sec. IV-G).
//!
//! The theorem's assumptions — convex closed domain, convex loss and
//! fairness function, Lipschitz continuity, bounded gradients — hold for
//! logistic regression over a bounded parameter ball with the relaxed DDP
//! constraint (the paper names exactly this example). This module
//! instantiates that setting:
//!
//! * a **linear** softmax model (`faction_nn::presets::linear`) trained by
//!   projected online gradient descent, one (or a few) gradient steps per
//!   task, parameters projected onto an L2 ball after every step;
//! * per-task **regret** `f_t(θ_t) − f_t(θ*_t)` against a per-task offline
//!   optimum obtained by training a fresh model to convergence;
//! * cumulative **fairness violation** `V = Σ_t ‖[v(D_t, θ_t)]₊‖`;
//! * **query complexity** under FACTION-style uncertainty-proportional
//!   Bernoulli querying.
//!
//! The `theory_bounds` harness sweeps the horizon `T` and checks the
//! discussion's stationary-environment rates: `R = O(√T)` and
//! `V = O(T^¼)` — i.e. log–log growth exponents of roughly `0.5` and
//! `0.25`, clearly sublinear.

use faction_data::{EnvironmentSpec, StreamSpec, TaskStream};
use faction_fairness::TotalLossConfig;
use faction_linalg::{Matrix, SeedRng};
use faction_nn::{BatchLoss, BatchMeta, Mlp, Optimizer, Sgd};
use serde::{Deserialize, Serialize};

use crate::loss::FairTotalLoss;

/// Configuration of the convex online-learning experiment.
#[derive(Debug, Clone)]
pub struct TheoryConfig {
    /// Feature dimensionality `d`.
    pub dim: usize,
    /// Samples per task.
    pub samples_per_task: usize,
    /// Radius of the parameter ball `Θ`.
    pub radius: f64,
    /// Base learning rate `γ₀` (Theorem 1 part 3 uses a decaying schedule
    /// `γ_t = γ₀ / √t`, which this harness applies).
    pub gamma0: f64,
    /// Gradient steps per task (1 = classic OGD).
    pub steps_per_task: usize,
    /// Fairness loss configuration (μ, ε).
    pub loss: TotalLossConfig,
    /// Number of environments (`m` in Theorem 1); 1 = stationary.
    pub environments: usize,
    /// Query-rate `α` for the query-complexity accounting.
    pub alpha: f64,
}

impl Default for TheoryConfig {
    fn default() -> Self {
        TheoryConfig {
            dim: 4,
            samples_per_task: 120,
            radius: 5.0,
            gamma0: 0.5,
            steps_per_task: 1,
            loss: TotalLossConfig { mu: 0.5, epsilon: 0.01, ..Default::default() },
            environments: 1,
            alpha: 1.0,
        }
    }
}

/// Cumulative curves produced by one theory run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoryCurves {
    /// Cumulative regret `R(t)` after each task.
    pub cum_regret: Vec<f64>,
    /// Cumulative fairness violation `V(t)` after each task.
    pub cum_violation: Vec<f64>,
    /// Cumulative query count `Q(t)` after each task.
    pub cum_queries: Vec<f64>,
}

impl TheoryCurves {
    /// Growth exponent of a cumulative curve: the slope of `log y` against
    /// `log t` fitted over the second half of the horizon (the asymptotic
    /// regime). Sublinear growth means an exponent `< 1`.
    pub fn growth_exponent(curve: &[f64]) -> f64 {
        let t0 = curve.len() / 2;
        let points: Vec<(f64, f64)> = curve
            .iter()
            .enumerate()
            .skip(t0.max(1))
            .filter(|(_, &y)| y > 0.0)
            .map(|(t, &y)| (((t + 1) as f64).ln(), y.ln()))
            .collect();
        if points.len() < 2 {
            return 0.0;
        }
        let n = points.len() as f64;
        let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
        let my = points.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let var: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        if var == 0.0 {
            0.0
        } else {
            cov / var
        }
    }
}

/// Averages the cumulative curves of several seeds — the published
/// exponents are always fitted on seed-averaged curves, since a single
/// run's regret curve is a step function whose isolated noise jumps make
/// log–log slopes meaningless.
pub fn mean_curves(cfg: &TheoryConfig, horizon: usize, seeds: u64) -> TheoryCurves {
    let runs: Vec<TheoryCurves> =
        (0..seeds).map(|s| run_theory_experiment(cfg, horizon, s)).collect();
    let avg = |pick: &dyn Fn(&TheoryCurves) -> &Vec<f64>| -> Vec<f64> {
        (0..horizon)
            .map(|t| runs.iter().map(|r| pick(r)[t]).sum::<f64>() / runs.len() as f64)
            .collect()
    };
    TheoryCurves {
        cum_regret: avg(&|r| &r.cum_regret),
        cum_violation: avg(&|r| &r.cum_violation),
        cum_queries: avg(&|r| &r.cum_queries),
    }
}

/// Builds a task stream for the theory experiment: `environments` blocks of
/// equal length covering `horizon` tasks. A single environment is the
/// stationary regime of the theorem's Discussion paragraph.
pub fn theory_stream(cfg: &TheoryConfig, horizon: usize, seed: u64) -> TaskStream {
    let per_env = horizon.div_ceil(cfg.environments.max(1));
    let environments = (0..cfg.environments.max(1))
        .map(|e| EnvironmentSpec {
            name: format!("env{e}"),
            mean_shift: {
                let mut v = vec![0.0; cfg.dim];
                // Shift along the last axis so environments differ but the
                // class structure is preserved.
                v[cfg.dim - 1] = 2.0 * e as f64;
                v
            },
            bias: 0.7,
            label_noise: 0.05,
            base_rate: 0.5,
            samples_per_task: cfg.samples_per_task,
            tasks: per_env,
            ..EnvironmentSpec::neutral(format!("env{e}"), cfg.dim, cfg.samples_per_task, per_env)
        })
        .collect();
    let mut stream = StreamSpec {
        name: "theory".into(),
        input_dim: cfg.dim,
        class_separation: 3.0,
        group_separation: 1.5,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, faction_data::Scale::Full);
    stream.tasks.truncate(horizon);
    stream
}

/// Loss (Eq. 9) of a model on a full task.
fn task_loss(model: &Mlp, loss: &FairTotalLoss, x: &Matrix, y: &[usize], s: &[i8]) -> f64 {
    let logits = model.logits(x);
    loss.loss_and_grad(&logits, &BatchMeta { labels: y, sensitive: s }).0
}

/// Raw relaxed fairness value `v` of a model on a task.
fn task_fairness(model: &Mlp, loss: &FairTotalLoss, x: &Matrix, s: &[i8], y: &[usize]) -> f64 {
    let probs = model.predict_proba(x);
    let h: Vec<f64> = (0..probs.rows()).map(|r| probs.get(r, 1)).collect();
    loss.config.fairness_value(&h, s, Some(y))
}

/// Environment comparator: a fresh linear model trained to (approximate)
/// convergence with `train_loss` (the *fair* comparator objective) on the
/// given fit split, projected onto the same ball as the online learner.
/// Approximates the best fixed fair parameter for the environment.
#[allow(clippy::type_complexity)]
fn offline_optimum(
    fit: (&Matrix, &Vec<usize>, &Vec<i8>),
    train_loss: &FairTotalLoss,
    cfg: &TheoryConfig,
    seed: u64,
) -> Mlp {
    let arch = faction_nn::presets::linear(cfg.dim, 2, seed);
    let mut model = Mlp::new(&arch);
    let mut opt = Sgd::new(0.3);
    let meta = BatchMeta { labels: fit.1, sensitive: fit.2 };
    for _ in 0..200 {
        model.train_step(fit.0, &meta, train_loss, &mut opt);
        model.project_params(cfg.radius);
    }
    model
}

/// Runs the primal–dual projected OGD of the Theorem 1 setting over
/// `horizon` tasks, returning the cumulative regret, violation and query
/// curves.
///
/// Two details follow the proof machinery rather than the fixed-μ training
/// loss used in the deep experiments:
///
/// * **Adaptive dual variable.** A fixed fairness weight reaches an
///   equilibrium where the CE gradient balances the fairness gradient,
///   leaving a *constant* per-task violation (linear `V`). The long-term
///   constraint analysis the paper builds on (Yi et al. [8]) instead runs
///   dual ascent `λ_{t+1} = [λ_t + η (‖v_t‖ − ε)]₊`, so persistent
///   violations keep raising the penalty until the per-task violation
///   decays — yielding the sublinear `V` of Theorem 1 part 3.
/// * **Coverage-based querying.** Softmax entropy has an aleatoric floor
///   (label noise), so entropy-proportional querying is linear in `T`. The
///   query-complexity bound `O(η√(αd|I_u|))` comes from a covering argument
///   over the `d`-dimensional input space; the rule here queries with
///   probability `min(α·d²_min, 1)` where `d_min` is the distance to the
///   nearest previously queried sample — epistemic uncertainty that genuinely
///   vanishes as the environment gets covered, and re-spikes on shift.
pub fn run_theory_experiment(cfg: &TheoryConfig, horizon: usize, seed: u64) -> TheoryCurves {
    let stream = theory_stream(cfg, horizon, seed);
    let arch = faction_nn::presets::linear(cfg.dim, 2, seed);
    let mut model = Mlp::new(&arch);
    let mut opt = Sgd::new(cfg.gamma0);
    let mut rng = SeedRng::new(seed ^ 0x7EE0);
    // Regret (Eq. 2) is measured on the loss f_t alone (cross-entropy,
    // μ = 0); the comparator is the best *fair* model per task (the paper
    // assumes labels come from a fair h* ∈ H), approximated by an offline
    // model trained with a strong fairness weight and scored CE-only.
    let metric_loss = FairTotalLoss::new(TotalLossConfig { mu: 0.0, ..cfg.loss });
    let comparator_loss = FairTotalLoss::new(TotalLossConfig { mu: 5.0, ..cfg.loss });

    let mut cum_regret = Vec::with_capacity(horizon);
    let mut cum_violation = Vec::with_capacity(horizon);
    let mut cum_queries = Vec::with_capacity(horizon);
    let (mut regret, mut violation, mut queries) = (0.0, 0.0, 0.0);
    let mut dual = cfg.loss.mu; // λ_0
    // One fixed fair comparator per environment (the `m` disjoint subsets
    // {I_u} of Theorem 1), trained on the environment's first task. Kept in
    // a sorted map so the harness stays order-deterministic even if a
    // future change walks the comparator set (a `HashMap` here is exactly
    // the iteration-order trap the analyzer's nondeterministic-iteration
    // rule exists to catch).
    let mut comparators: std::collections::BTreeMap<usize, Mlp> =
        std::collections::BTreeMap::new();
    let mut queried: Vec<Vec<f64>> = Vec::new();

    for (t, task) in stream.tasks.iter().enumerate() {
        let x = task.features();
        let y = task.labels();
        let s = task.sensitives();
        // Held-out split: the comparator optimizes on even rows and both
        // models are *scored* on odd rows. Scoring the comparator on its own
        // training rows would credit it for fitting that task's sampled
        // noise, leaving a constant per-task regret floor no online learner
        // can close (and turning R(T) linear for large T purely as an
        // estimation artifact).
        let fit_idx: Vec<usize> = (0..task.len()).step_by(2).collect();
        let eval_idx: Vec<usize> = (1..task.len()).step_by(2).collect();
        let gather = |idx: &[usize]| -> (Matrix, Vec<usize>, Vec<i8>) {
            (
                faction_nn::mlp::gather_rows(&x, idx),
                idx.iter().map(|&i| y[i]).collect(),
                idx.iter().map(|&i| s[i]).collect(),
            )
        };
        let (fit_x, fit_y, fit_s) = gather(&fit_idx);
        let (eval_x, eval_y, eval_s) = gather(&eval_idx);

        // Instantaneous loss of θ_t, before seeing the task (online regret).
        // The comparator is the best *fair* fixed parameter for the task's
        // environment (trained once per environment, scored on the same
        // held-out half) — the `h* ∈ H` of the paper's regret setup.
        let inst = task_loss(&model, &metric_loss, &eval_x, &eval_y, &eval_s);
        let comparator = comparators.entry(task.env).or_insert_with(|| {
            offline_optimum((&fit_x, &fit_y, &fit_s), &comparator_loss, cfg, seed ^ t as u64)
        });
        let best = task_loss(comparator, &metric_loss, &eval_x, &eval_y, &eval_s);
        // Raw (unrectified) increments, as in the classic regret definition:
        // rectifying at zero would accumulate pure evaluation noise at a
        // linear rate (E[max(N(0,σ²),0)] > 0) and mask the true decay. The
        // cumulative curve is clamped at zero for reporting.
        regret = (regret + (inst - best)).max(0.0);

        // Fairness violation of θ_t on this task: ‖[v]₊‖.
        let v = task_fairness(&model, &metric_loss, &eval_x, &eval_s, &eval_y);
        violation += v.abs();

        // Coverage-based query complexity (see doc comment above).
        for row in x.iter_rows() {
            let d_min_sq = queried
                .iter()
                .map(|q| faction_linalg::vector::dist2(row, q))
                .fold(f64::INFINITY, f64::min);
            // Normalize by the dimension so the rule is scale-comparable
            // across `d` (the bound's √d dependence).
            let p = if d_min_sq.is_finite() {
                (cfg.alpha * d_min_sq / cfg.dim as f64).min(1.0)
            } else {
                1.0
            };
            if rng.bernoulli(p) {
                queries += 1.0;
                queried.push(row.to_vec());
            }
        }

        // Dual ascent on the constraint ‖v‖ ≤ ε with a decaying step, so λ
        // stays bounded once per-task violations shrink below the slack.
        let dual_step = 0.5 / ((t + 1) as f64).sqrt();
        dual = (dual + dual_step * (v.abs() - cfg.loss.epsilon)).max(0.0);
        let step_loss = FairTotalLoss::new(TotalLossConfig { mu: dual, ..cfg.loss });

        // Primal OGD update with the decaying schedule γ_t = γ₀ / √(t+1),
        // then projection onto Θ.
        opt.set_learning_rate(cfg.gamma0 / ((t + 1) as f64).sqrt());
        let meta = BatchMeta { labels: &y, sensitive: &s };
        for _ in 0..cfg.steps_per_task.max(1) {
            model.train_step(&x, &meta, &step_loss, &mut opt);
            model.project_params(cfg.radius);
        }

        cum_regret.push(regret);
        cum_violation.push(violation);
        cum_queries.push(queries);
    }
    TheoryCurves { cum_regret, cum_violation, cum_queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_exponent_of_known_curves() {
        let linear: Vec<f64> = (1..=200).map(|t| t as f64).collect();
        let sqrt: Vec<f64> = (1..=200).map(|t| (t as f64).sqrt()).collect();
        let e_lin = TheoryCurves::growth_exponent(&linear);
        let e_sqrt = TheoryCurves::growth_exponent(&sqrt);
        assert!((e_lin - 1.0).abs() < 0.01, "linear exponent {e_lin}");
        assert!((e_sqrt - 0.5).abs() < 0.01, "sqrt exponent {e_sqrt}");
        assert_eq!(TheoryCurves::growth_exponent(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn stationary_regret_is_sublinear() {
        let cfg = TheoryConfig { samples_per_task: 60, ..Default::default() };
        let curves = mean_curves(&cfg, 40, 5);
        assert_eq!(curves.cum_regret.len(), 40);
        // Sublinearity on the seed-averaged curve: the second half of the
        // horizon must accumulate no more regret than the first half did
        // (a saturating learner), with slack for residual noise.
        let half = curves.cum_regret[20];
        let full = curves.cum_regret[39];
        assert!(
            full - half <= half + 0.2,
            "second-half regret {:.3} vs first-half {half:.3}",
            full - half
        );
    }

    #[test]
    fn stationary_queries_decay() {
        // Query rate in the last quarter must be well below the first
        // quarter's: the model gains confidence on a stationary stream.
        let cfg = TheoryConfig { samples_per_task: 60, ..Default::default() };
        let curves = run_theory_experiment(&cfg, 40, 5);
        let q = &curves.cum_queries;
        let early = q[9];
        let late = q[39] - q[29];
        assert!(
            late < early,
            "late-window queries {late} must be below early cumulative {early}"
        );
    }

    #[test]
    fn dynamic_regret_runs_are_byte_identical() {
        // Two invocations with the same seed must produce *byte-identical*
        // serialized curves — the property the analyzer gate protects. Use
        // a multi-environment config so the per-environment comparator map
        // is actually exercised.
        let cfg = TheoryConfig {
            samples_per_task: 40,
            environments: 3,
            ..Default::default()
        };
        let a = run_theory_experiment(&cfg, 12, 9);
        let b = run_theory_experiment(&cfg, 12, 9);
        let ja = serde_json::to_string(&a).expect("serialize run A");
        let jb = serde_json::to_string(&b).expect("serialize run B");
        assert_eq!(ja.as_bytes(), jb.as_bytes(), "regret curves must replay exactly");
    }

    #[test]
    fn theory_stream_blocks_environments() {
        let cfg = TheoryConfig { environments: 3, ..Default::default() };
        let stream = theory_stream(&cfg, 12, 1);
        assert_eq!(stream.len(), 12);
        assert_eq!(stream.num_environments(), 3);
        // Environment indices are non-decreasing (block structure).
        for w in stream.tasks.windows(2) {
            assert!(w[1].env >= w[0].env);
        }
    }
}
