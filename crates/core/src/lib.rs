//! FACTION: the Fair Active Online Learning protocol, the FACTION
//! selection algorithm, and the seven baselines of the paper's evaluation.
//!
//! Layered on the substrates (`faction-linalg`, `faction-nn`,
//! `faction-density`, `faction-fairness`, `faction-data`), this crate is the
//! paper's primary contribution:
//!
//! * [`pool`] — the growing labeled task pool `D_t` and the online model
//!   wrapper that retrains on it (Algorithm 1, lines 7–8);
//! * [`loss`] — the fairness-regularized total loss `L_CE + μ(L_fair − ε)`
//!   of Eq. (9), plugged into `faction-nn`'s training loop;
//! * [`selection`] — score normalization (Eq. 7) and the Bernoulli-trial
//!   acquisition loop (Algorithm 1, lines 19–36);
//! * [`strategies`] — [`strategies::Strategy`] implementations: **FACTION**
//!   (Eq. 6 scoring with ablation switches) and the baselines **Random**,
//!   **Entropy-AL**, **QuFUR**, **DDU**, **FAL**, **FAL-CUR** and
//!   **Decoupled** (D-FA²L), each adapted to the online setting as in
//!   Sec. V-A2;
//! * [`runner`] — the sequential protocol driver: per-task evaluation
//!   before adaptation, budget accounting, timing, metric recording;
//! * [`report`] — multi-seed aggregation and table formatting for the
//!   benchmark harnesses;
//! * [`theory`] — the convex (logistic) instantiation used to validate
//!   Theorem 1's regret / violation / query-complexity growth rates.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod drift;
pub mod kmeans;
pub mod loss;
pub mod pool;
pub mod report;
pub mod runner;
pub mod selection;
pub mod strategies;
pub mod streaming;
pub mod theory;

pub use config::ExperimentConfig;
pub use loss::{FairTotalLoss, MultiGroupFairLoss};
pub use pool::{LabeledPool, OnlineModel, PoolDelta, PoolPolicy};
pub use runner::{run_experiment, RunRecord, TaskRecord};
pub use selection::{acquire, AcquisitionMode};
pub use strategies::{SelectionContext, Strategy};
