//! Sample-by-sample arrival support (paper Sec. IV-D: "This can extend to
//! other settings not explored here, like samples arriving individually,
//! where the normalization range can be updated incrementally with all
//! gathered scores").
//!
//! [`StreamingNormalizer`] maintains the running score range so that Eq. (7)
//! — `ω(x) = 1 − Normalize(u(x))` — can be evaluated online, one sample at a
//! time, without waiting for a batch. [`StreamingSelector`] couples it with
//! the Bernoulli trial of Algorithm 1 line 29 and a per-task budget, giving
//! a complete one-pass selection loop.

use faction_linalg::SeedRng;

/// Incrementally updated min–max normalizer for Eq. (7).
#[derive(Debug, Clone, Default)]
pub struct StreamingNormalizer {
    lo: Option<f64>,
    hi: Option<f64>,
    count: usize,
}

impl StreamingNormalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scores observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Observes a score, widening the running range. Non-finite scores are
    /// counted but do not affect the range.
    pub fn observe(&mut self, score: f64) {
        self.count += 1;
        if !score.is_finite() {
            return;
        }
        self.lo = Some(self.lo.map_or(score, |lo| lo.min(score)));
        self.hi = Some(self.hi.map_or(score, |hi| hi.max(score)));
    }

    /// Normalizes a score against the range seen *so far*, clamped to
    /// `[0, 1]`. Before any spread exists (zero or one observation, or a
    /// constant stream) every score maps to `0.0`, mirroring the batch
    /// normalizer's constant-input convention — which makes the desirability
    /// `ω = 1` and lets early samples through, the right cold-start
    /// behavior for an empty model.
    pub fn normalize(&self, score: f64) -> f64 {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) if hi > lo => ((score - lo) / (hi - lo)).clamp(0.0, 1.0),
            _ => 0.0,
        }
    }

    /// Desirability `ω = 1 − Normalize(score)` under the running range.
    pub fn desirability(&self, score: f64) -> f64 {
        1.0 - self.normalize(score)
    }
}

/// One-pass streaming selector: observe a score, decide to query via a
/// Bernoulli trial, respect a budget.
#[derive(Debug, Clone)]
pub struct StreamingSelector {
    normalizer: StreamingNormalizer,
    alpha: f64,
    budget: usize,
    acquired: usize,
}

impl StreamingSelector {
    /// Creates a selector with query-rate `alpha` and a total `budget`.
    pub fn new(alpha: f64, budget: usize) -> Self {
        StreamingSelector {
            normalizer: StreamingNormalizer::new(),
            alpha,
            budget,
            acquired: 0,
        }
    }

    /// Labels acquired so far.
    pub fn acquired(&self) -> usize {
        self.acquired
    }

    /// Remaining budget.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.acquired)
    }

    /// Processes one incoming sample's raw score `u(x)` (lower = more
    /// desirable). Returns `true` if the sample should be queried. The score
    /// is folded into the running range *before* the decision so the range
    /// always reflects all gathered scores, per Sec. IV-D.
    pub fn offer(&mut self, score: f64, rng: &mut SeedRng) -> bool {
        self.normalizer.observe(score);
        if self.remaining() == 0 {
            return false;
        }
        let omega = self.normalizer.desirability(score);
        let p = (self.alpha * omega).min(1.0);
        if rng.bernoulli(p) {
            self.acquired += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_normalizer_maps_to_zero() {
        let n = StreamingNormalizer::new();
        assert_eq!(n.normalize(5.0), 0.0);
        assert_eq!(n.desirability(5.0), 1.0);
    }

    #[test]
    fn range_tracks_observations() {
        let mut n = StreamingNormalizer::new();
        n.observe(2.0);
        n.observe(6.0);
        assert_eq!(n.count(), 2);
        assert!((n.normalize(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(n.normalize(2.0), 0.0);
        assert_eq!(n.normalize(6.0), 1.0);
    }

    #[test]
    fn out_of_range_scores_clamp() {
        let mut n = StreamingNormalizer::new();
        n.observe(0.0);
        n.observe(1.0);
        assert_eq!(n.normalize(-5.0), 0.0);
        assert_eq!(n.normalize(9.0), 1.0);
    }

    #[test]
    fn converges_to_batch_normalization() {
        // After observing a whole batch, streaming normalization equals the
        // batch min–max normalization of the same scores.
        let scores = [3.0, -1.0, 7.0, 2.0, 0.5];
        let mut n = StreamingNormalizer::new();
        for &s in &scores {
            n.observe(s);
        }
        let batch = faction_linalg::vector::min_max_normalize(&scores);
        for (i, &s) in scores.iter().enumerate() {
            assert!((n.normalize(s) - batch[i]).abs() < 1e-12, "score {s}");
        }
    }

    #[test]
    fn non_finite_scores_are_ignored_for_range() {
        let mut n = StreamingNormalizer::new();
        n.observe(f64::NAN);
        n.observe(1.0);
        n.observe(3.0);
        assert_eq!(n.count(), 3);
        assert!((n.normalize(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_non_finite_stream_behaves_like_empty() {
        // A stream that never produces a finite score must leave the range
        // unset: every probe normalizes to 0 (desirability 1), exactly the
        // cold-start convention, and nothing is NaN.
        let mut n = StreamingNormalizer::new();
        for score in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            n.observe(score);
        }
        assert_eq!(n.count(), 4);
        assert_eq!(n.normalize(3.0), 0.0);
        assert_eq!(n.desirability(3.0), 1.0);
        assert!(n.normalize(f64::NAN) == 0.0, "probing with NaN must not leak NaN");
    }

    #[test]
    fn collapsed_range_maps_everything_to_zero() {
        // lo == hi (one observation, or a constant stream): no spread means
        // no information, so every score — equal, above, below — maps to 0
        // rather than dividing by zero.
        let mut n = StreamingNormalizer::new();
        n.observe(4.0);
        assert_eq!(n.normalize(4.0), 0.0);
        assert_eq!(n.normalize(100.0), 0.0);
        assert_eq!(n.normalize(-100.0), 0.0);
        n.observe(4.0);
        n.observe(4.0);
        assert_eq!(n.normalize(4.0), 0.0);
        assert_eq!(n.desirability(4.0), 1.0);
        // The first differing score restores a real range.
        n.observe(6.0);
        assert!((n.normalize(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selector_respects_budget() {
        let mut rng = SeedRng::new(1);
        let mut selector = StreamingSelector::new(10.0, 3);
        let mut taken = 0;
        for i in 0..100 {
            if selector.offer(i as f64 % 7.0, &mut rng) {
                taken += 1;
            }
        }
        assert_eq!(taken, 3);
        assert_eq!(selector.acquired(), 3);
        assert_eq!(selector.remaining(), 0);
    }

    #[test]
    fn low_scores_are_favored() {
        // Feed alternating low/high scores; low (more desirable) scores
        // must be selected much more often across seeds.
        let mut low_hits = 0;
        let mut high_hits = 0;
        for seed in 0..200 {
            let mut rng = SeedRng::new(seed);
            let mut selector = StreamingSelector::new(0.8, usize::MAX);
            // Prime the range.
            selector.offer(0.0, &mut rng);
            selector.offer(10.0, &mut rng);
            for i in 0..40 {
                let score = if i % 2 == 0 { 0.5 } else { 9.5 };
                let took = selector.offer(score, &mut rng);
                if took {
                    if i % 2 == 0 {
                        low_hits += 1;
                    } else {
                        high_hits += 1;
                    }
                }
            }
        }
        assert!(
            low_hits > 5 * high_hits,
            "low-score selections {low_hits} vs high {high_hits}"
        );
    }
}
