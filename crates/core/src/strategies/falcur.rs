//! The FAL-CUR baseline (paper Sec. V-A2, [34]): Fair Active Learning using
//! Clustering, Uncertainty and Representativeness.
//!
//! FAL-CUR clusters the unlabeled batch (fair clustering), then scores each
//! sample by a convex combination of its uncertainty and representativeness
//! (closeness to its cluster center), and selects the best samples *across
//! clusters* so that every cluster — and with it, every region/group of the
//! data — contributes to the labeled set. The `β` knob swept in Fig. 3
//! trades uncertainty against representativeness.

use faction_linalg::{vector, SeedRng};

use crate::kmeans::KMeans;
use crate::selection::AcquisitionMode;
use crate::strategies::{candidate_entropy, SelectionContext, Strategy};

/// FAL-CUR hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FalCurParams {
    /// Uncertainty weight `β` (representativeness gets `1 − β`);
    /// Fig. 3 sweeps `{0.3, 0.4, 0.5, 0.6, 0.7}`.
    pub beta: f64,
    /// Number of clusters for the fair-clustering step.
    pub clusters: usize,
    /// Lloyd-iteration bound.
    pub max_iters: usize,
}

impl Default for FalCurParams {
    fn default() -> Self {
        FalCurParams { beta: 0.5, clusters: 8, max_iters: 25 }
    }
}

/// Fair clustering + uncertainty + representativeness selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct FalCur {
    /// Strategy hyperparameters.
    pub params: FalCurParams,
}

impl FalCur {
    /// Creates FAL-CUR with explicit parameters.
    pub fn new(params: FalCurParams) -> Self {
        FalCur { params }
    }
}

impl Strategy for FalCur {
    fn name(&self) -> String {
        "FAL-CUR".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, rng: &mut SeedRng) -> Vec<f64> {
        let n = ctx.candidates.rows();
        if n == 0 {
            return Vec::new();
        }
        // Cluster in the learned feature space (representations, not raw
        // inputs, as in the original).
        let features = ctx.model.mlp().features(ctx.candidates);
        let km = KMeans::fit(&features, self.params.clusters, self.params.max_iters, rng);

        let uncertainty = vector::min_max_normalize(&candidate_entropy(ctx));
        let dists: Vec<f64> = (0..n).map(|i| km.distance_to_center(&features, i)).collect();
        let representativeness: Vec<f64> =
            vector::min_max_normalize(&dists).into_iter().map(|d| 1.0 - d).collect();
        let base: Vec<f64> = uncertainty
            .iter()
            .zip(&representativeness)
            .map(|(u, r)| self.params.beta * u + (1.0 - self.params.beta) * r)
            .collect();

        // Cross-cluster fairness: rank samples *within* their cluster and
        // interleave ranks globally, so a top-K acquisition takes each
        // cluster's best first (round-robin across clusters), its
        // second-best next, and so on.
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); km.k()];
        for (i, &c) in km.assignments.iter().enumerate() {
            per_cluster[c].push(i);
        }
        let mut desirability = vec![0.0; n];
        for members in &mut per_cluster {
            // NaN-last total order: a poisoned base score ranks behind
            // every scored member of its cluster instead of landing
            // wherever the candidate happened to sit.
            members.sort_by(|&a, &b| vector::total_order_desc(base[a], base[b]));
            for (rank, &i) in members.iter().enumerate() {
                // Rank dominates; the base score breaks ties inside a rank.
                desirability[i] = -(rank as f64) + 0.5 * base[i];
            }
        }
        crate::strategies::contain_scores(desirability)
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::acquire;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut FalCur::default(), 81);
    }

    #[test]
    fn selection_spreads_across_clusters() {
        // The fixture has two well-separated candidate groups (familiar vs
        // far-OOD). A top-K of 10 must not come exclusively from one group.
        let fixture = Fixture::new(82);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(1);
        let mut falcur = FalCur::new(FalCurParams { clusters: 4, ..Default::default() });
        let scores = falcur.desirability(&ctx, &mut rng);
        let picked = acquire(&scores, 10, AcquisitionMode::TopK, &mut rng);
        let near = picked.iter().filter(|&&i| i < 20).count();
        let far = picked.len() - near;
        assert!(near >= 2 && far >= 2, "cluster spread violated: near {near}, far {far}");
    }

    #[test]
    fn beta_one_is_pure_uncertainty_ranking_within_cluster() {
        let fixture = Fixture::new(83);
        let ctx = fixture.ctx();
        let mut rng_a = SeedRng::new(2);
        let mut pure = FalCur::new(FalCurParams { beta: 1.0, clusters: 1, ..Default::default() });
        let scores = pure.desirability(&ctx, &mut rng_a);
        // With one cluster and β = 1, ordering must match entropy ordering.
        let entropy = {
            let probs = ctx.model.mlp().predict_proba(ctx.candidates);
            faction_nn::loss::entropy_per_row(&probs)
        };
        let top_score = faction_linalg::vector::argmax(&scores).unwrap();
        let top_entropy = faction_linalg::vector::argmax(&entropy).unwrap();
        assert_eq!(top_score, top_entropy);
    }
}
