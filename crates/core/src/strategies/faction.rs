//! The FACTION selection strategy (paper Sec. IV-C / IV-D, Algorithm 1).
//!
//! Per AL iteration:
//!
//! 1. extract features `z = r(x, θ_{t−1})` for the labeled pool and fit the
//!    fairness-sensitive density estimator `G(z)` with one component per
//!    (class, sensitive) pair (Sec. IV-B);
//! 2. score each unlabeled candidate with Eq. (6),
//!    `u(x) = g(z) − λ Σ_c p_c^x Δg_c(z)` — *low* `u` means high epistemic
//!    uncertainty and/or high unfairness, both reasons to query;
//! 3. convert to desirability `ω(x) = 1 − Normalize(u(x))` (Eq. 7) and let
//!    the runner perform `Bernoulli(min(α·ω, 1))` acquisition trials
//!    (Algorithm 1, line 29).
//!
//! The two ablation switches of Fig. 4 / Table I live here: `fair_select`
//! removes the `λ Σ p_c Δg_c` term from Eq. (6) ("w/o Fair Select") and
//! `fair_reg` swaps the training loss back to plain cross-entropy
//! ("w/o Fair Reg"). Disabling both leaves pure epistemic-uncertainty
//! selection, i.e. the DDU-style variant in the ablation tables.

use std::cell::RefCell;

use faction_density::{
    DensityError, DensityScratch, FairDensityConfig, FairDensityEstimator, IncrementalGda,
};
use faction_fairness::TotalLossConfig;
use faction_linalg::{Matrix, SeedRng};
use faction_nn::{BatchLoss, CrossEntropyLoss, Mlp, MlpWorkspace};

use crate::loss::FairTotalLoss;
use crate::pool::LabeledPool;
use crate::selection::{desirability_from_scores, AcquisitionMode};
use crate::strategies::{SelectionContext, Strategy};

/// How FACTION rebuilds its density estimator each round (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefitMode {
    /// Refit `G(z)` from scratch on the whole pool every round (the paper
    /// protocol; cost grows with the pool).
    #[default]
    Full,
    /// Maintain `G(z)` by rank-1 Cholesky up/downdates driven by the pool's
    /// delta log, re-anchoring with one clean batch fit every
    /// `reanchor_every` rounds. Per-round cost is flat in pool size; on a
    /// stationary stream with a frozen extractor the scores track the full
    /// refit within 1e-8 (a blocking CI gate). While the extractor `θ` is
    /// still training, components mix features from slightly different `θ`
    /// snapshots between anchors — the re-anchor bounds that drift.
    Incremental {
        /// Rounds between clean batch re-anchors (0 anchors every round).
        reanchor_every: usize,
    },
}

/// Hyperparameters for the FACTION strategy.
#[derive(Debug, Clone, Copy)]
pub struct FactionParams {
    /// Trade-off `λ` between epistemic uncertainty and the fairness gaps in
    /// Eq. (6). Paper tuning range `{1e-4, …, 100}`.
    pub lambda: f64,
    /// Query-rate `α` of the Bernoulli trials. Paper range `{0.1, …, 10}`.
    pub alpha: f64,
    /// Density-estimator settings (ridge, covariance sharing).
    pub density: FairDensityConfig,
    /// Fairness-regularized loss settings (μ, ε, notion) used when
    /// `fair_reg` is on.
    pub loss: TotalLossConfig,
    /// Include the fairness term of Eq. (6) in selection.
    pub fair_select: bool,
    /// Train with the fairness-regularized loss of Eq. (9).
    pub fair_reg: bool,
    /// Density refit schedule: full batch refit or incremental updates.
    pub refit: RefitMode,
}

impl Default for FactionParams {
    fn default() -> Self {
        FactionParams {
            lambda: 1.0,
            alpha: 3.0,
            density: FairDensityConfig::default(),
            loss: TotalLossConfig::default(),
            fair_select: true,
            fair_reg: true,
            refit: RefitMode::Full,
        }
    }
}

/// Long-lived buffers for [`Faction::raw_scores`]: MLP forward workspaces,
/// feature/probability matrices, and the density-estimator scratch. Held in
/// a `RefCell` because scoring takes `&self`; all buffers reach their
/// high-water size on the first round and are then reused allocation-free.
#[derive(Debug, Clone, Default)]
struct FactionScratch {
    ws: MlpWorkspace,
    pool_z: Matrix,
    z: Matrix,
    probs: Matrix,
    density: DensityScratch,
    log_density: Vec<f64>,
    gaps: Matrix,
    /// Streaming-GDA mirror of the pool (only under
    /// [`RefitMode::Incremental`]); `None` until the first anchor and after
    /// any invalidation.
    incr: Option<IncrementalState>,
    /// 1×d input scratch for extracting a single pool row's features.
    row_x: Matrix,
    /// 1×f output scratch for the same.
    row_z: Matrix,
}

/// The incremental refit state: the streaming estimator plus its position
/// in the pool's delta log.
#[derive(Debug, Clone)]
struct IncrementalState {
    gda: IncrementalGda,
    /// Pool delta-log cursor up to which `gda` mirrors the pool.
    cursor: u64,
    /// Rounds since the last clean batch anchor.
    rounds_since_anchor: usize,
    /// Set while a mutation is in flight; if a panic (caught at the
    /// runner's degradation boundary) strands it set, the next round
    /// re-anchors instead of trusting half-applied state.
    dirty: bool,
}

/// Rebuilds the streaming estimator from the full pool (the anchor path).
fn anchor_incremental(
    params: &FactionParams,
    mlp: &Mlp,
    pool: &LabeledPool,
    num_classes: usize,
    ws: &mut MlpWorkspace,
    pool_z: &mut Matrix,
    incr: &mut Option<IncrementalState>,
) -> Result<(), DensityError> {
    if incr.is_some() {
        faction_telemetry::counter_add("density.incremental.reanchors", 1);
    }
    mlp.features_into(pool.features(), ws, pool_z);
    let gda = IncrementalGda::from_rows(
        pool_z,
        pool.labels(),
        pool.sensitives(),
        pool.uids(),
        num_classes,
        params.density,
    );
    match gda {
        Ok(gda) => {
            *incr = Some(IncrementalState {
                gda,
                cursor: pool.delta_head(),
                rounds_since_anchor: 0,
                dirty: false,
            });
            Ok(())
        }
        Err(e) => {
            // Unfactorable without the escalation ladder: hand the round to
            // the batch fit (which owns the ladder) and start clean later.
            *incr = None;
            Err(e)
        }
    }
}

/// Applies the pool deltas accumulated since `state.cursor` to the
/// streaming estimator, extracting features for added rows under the
/// current `θ`.
fn replay_deltas(
    state: &mut IncrementalState,
    mlp: &Mlp,
    pool: &LabeledPool,
    ws: &mut MlpWorkspace,
    row_x: &mut Matrix,
    row_z: &mut Matrix,
) -> Result<(), DensityError> {
    let deltas = pool
        .deltas_since(state.cursor)
        .ok_or_else(|| DensityError::Incremental { what: "delta cursor expired".into() })?;
    // A row added and evicted within the same backlog never needs to touch
    // the estimator; collect the backlog's evicted uids to skip such pairs.
    let evicted_later: std::collections::BTreeSet<u64> =
        deltas.iter().filter(|d| d.evicted).map(|d| d.uid).collect();
    state.dirty = true;
    let d = pool.features().cols();
    for delta in deltas {
        if delta.evicted {
            if state.gda.contains(delta.uid) {
                state.gda.remove(delta.uid)?;
            }
        } else {
            if evicted_later.contains(&delta.uid) {
                continue;
            }
            let at = pool.index_of_uid(delta.uid).ok_or_else(|| {
                DensityError::Incremental {
                    what: format!("added uid {} not found in pool", delta.uid),
                }
            })?;
            row_x.reset_to_zeros(1, d);
            row_x.row_mut(0).copy_from_slice(pool.features().row(at));
            mlp.features_into(row_x, ws, row_z);
            state.gda.insert(
                delta.uid,
                row_z.row(0),
                pool.labels()[at],
                pool.sensitives()[at],
            )?;
        }
    }
    state.dirty = false;
    state.cursor = pool.delta_head();
    state.rounds_since_anchor += 1;
    Ok(())
}

/// One round of the incremental refit: anchor when due (or when the state
/// is missing, dirty, or behind the bounded delta log), otherwise replay
/// the round's deltas; then materialize the estimator. Returns `None` when
/// this round must fall back to the batch fit — the state is invalidated so
/// the next incremental round starts from a clean anchor.
#[allow(clippy::too_many_arguments)]
fn incremental_estimator(
    params: &FactionParams,
    mlp: &Mlp,
    pool: &LabeledPool,
    num_classes: usize,
    reanchor_every: usize,
    ws: &mut MlpWorkspace,
    pool_z: &mut Matrix,
    row_x: &mut Matrix,
    row_z: &mut Matrix,
    incr: &mut Option<IncrementalState>,
) -> Option<FairDensityEstimator> {
    if pool.is_empty() {
        // Let the batch path produce the canonical degenerate-pool answer.
        *incr = None;
        return None;
    }
    let needs_anchor = match incr.as_ref() {
        None => true,
        Some(s) => {
            s.dirty
                || s.rounds_since_anchor >= reanchor_every
                || pool.deltas_since(s.cursor).is_none()
        }
    };
    let replay_failed = if needs_anchor {
        false
    } else {
        match incr.as_mut() {
            Some(s) => replay_deltas(s, mlp, pool, ws, row_x, row_z).is_err(),
            None => false,
        }
    };
    if (needs_anchor || replay_failed)
        && anchor_incremental(params, mlp, pool, num_classes, ws, pool_z, incr).is_err()
    {
        return None;
    }
    match incr.as_ref() {
        Some(s) => match s.gda.estimator() {
            Ok(e) => Some(e),
            Err(_) => {
                *incr = None;
                None
            }
        },
        None => None,
    }
}

/// The FACTION strategy with ablation switches.
#[derive(Debug, Clone)]
pub struct Faction {
    params: FactionParams,
    scratch: RefCell<FactionScratch>,
}

impl Faction {
    /// Creates FACTION (or one of its ablated variants) from parameters.
    pub fn new(params: FactionParams) -> Self {
        Faction { params, scratch: RefCell::new(FactionScratch::default()) }
    }

    /// The "w/o Fair Select" ablation of Fig. 4.
    pub fn without_fair_select(mut params: FactionParams) -> Self {
        params.fair_select = false;
        Faction::new(params)
    }

    /// The "w/o Fair Reg" ablation of Fig. 4.
    pub fn without_fair_reg(mut params: FactionParams) -> Self {
        params.fair_reg = false;
        Faction::new(params)
    }

    /// The "w/o Fair Select & Fair Reg" ablation (pure epistemic
    /// uncertainty).
    pub fn uncertainty_only(mut params: FactionParams) -> Self {
        params.fair_select = false;
        params.fair_reg = false;
        Faction::new(params)
    }

    /// Current parameters (read-only).
    pub fn params(&self) -> &FactionParams {
        &self.params
    }

    /// Computes the raw Eq. (6) scores `u(x)` (lower = query first) for a
    /// candidate batch. Exposed for the scoring micro-benchmarks.
    ///
    /// The whole candidate batch is scored through the batched density path
    /// ([`FairDensityEstimator::score_batch_into`]) with long-lived scratch
    /// buffers, so after the first round this performs zero per-candidate
    /// allocations; the results are bit-identical to per-sample
    /// `log_density` / `delta_g_all` scoring.
    pub fn raw_scores(&self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        let n = ctx.candidates.rows();
        let mut scratch = self.scratch.borrow_mut();
        let FactionScratch { ws, pool_z, z, probs, density, log_density, gaps, incr, row_x, row_z } =
            &mut *scratch;
        let mlp = ctx.model.mlp();
        // Fit G(z) on the pool's learned features (Algorithm 1, lines 9–18).
        // Under `RefitMode::Incremental` the estimator is maintained by
        // rank-1 updates from the pool's delta log; any round it cannot
        // serve falls through to the batch fit below (which owns the ridge
        // escalation ladder of DESIGN.md §10).
        let estimator = {
            let _fit_span = faction_telemetry::span("core.faction.gda_fit_ns");
            let streamed = match self.params.refit {
                RefitMode::Incremental { reanchor_every } => incremental_estimator(
                    &self.params,
                    mlp,
                    ctx.pool,
                    ctx.num_classes,
                    reanchor_every,
                    ws,
                    pool_z,
                    row_x,
                    row_z,
                    incr,
                ),
                RefitMode::Full => None,
            };
            match streamed {
                Some(e) => e,
                None => {
                    mlp.features_into(ctx.pool.features(), ws, pool_z);
                    let estimator = FairDensityEstimator::fit(
                        pool_z,
                        ctx.pool.labels(),
                        ctx.pool.sensitives(),
                        ctx.num_classes,
                        &self.params.density,
                    );
                    match estimator {
                        Ok(e) => e,
                        // Degenerate pool (e.g. a single sample): no density
                        // signal yet; every candidate is equally desirable.
                        Err(_) => return vec![0.0; n],
                    }
                }
            }
        };
        let feature_span = faction_telemetry::span("core.faction.features_ns");
        mlp.features_into(ctx.candidates, ws, z);
        drop(feature_span);
        let _score_span = faction_telemetry::span("core.faction.gda_score_ns");
        log_density.clear();
        log_density.resize(n, 0.0);
        let mut scores = Vec::with_capacity(n);
        if self.params.fair_select {
            mlp.predict_proba_into(ctx.candidates, ws, probs);
            if estimator.score_batch_into(z, density, log_density, gaps).is_err() {
                // Unreachable for consistent dimensions; treat like the
                // degenerate-pool case.
                return vec![0.0; n];
            }
            for (i, &ld) in log_density.iter().enumerate() {
                let fairness_term = (0..ctx.num_classes)
                    .map(|c| probs.get(i, c) * gaps.get(c, i))
                    .sum::<f64>();
                scores.push(ld - self.params.lambda * fairness_term);
            }
        } else {
            if estimator.log_density_batch_into(z, density, log_density).is_err() {
                return vec![0.0; n];
            }
            scores.extend_from_slice(log_density);
        }
        scores
    }
}

impl Strategy for Faction {
    fn name(&self) -> String {
        match (self.params.fair_select, self.params.fair_reg) {
            (true, true) => "FACTION".into(),
            (false, true) => "FACTION w/o Fair Select".into(),
            (true, false) => "FACTION w/o Fair Reg".into(),
            (false, false) => "FACTION w/o Fair Select & Fair Reg".into(),
        }
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        desirability_from_scores(&self.raw_scores(ctx))
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::Probabilistic { alpha: self.params.alpha }
    }

    fn training_loss(&self) -> Box<dyn BatchLoss> {
        if self.params.fair_reg {
            Box::new(FairTotalLoss::new(self.params.loss))
        } else {
            Box::new(CrossEntropyLoss)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut Faction::new(FactionParams::default()), 11);
        check_strategy_contract(&mut Faction::uncertainty_only(FactionParams::default()), 12);
        check_strategy_contract(
            &mut Faction::new(FactionParams {
                refit: RefitMode::Incremental { reanchor_every: 4 },
                ..Default::default()
            }),
            13,
        );
    }

    /// Drives `rounds` rounds of pool growth with a frozen extractor and
    /// asserts the incremental scores stay within `tol` of a per-round full
    /// refit (the DESIGN.md §11 contract, here at the strategy layer).
    fn assert_incremental_tracks_full(
        fixture: &mut Fixture,
        reanchor_every: usize,
        rounds: usize,
        tol: f64,
    ) {
        let full = Faction::new(FactionParams::default());
        let incremental = Faction::new(FactionParams {
            refit: RefitMode::Incremental { reanchor_every },
            ..Default::default()
        });
        let mut rng = faction_linalg::SeedRng::new(77);
        for round in 0..rounds {
            for i in 0..3 {
                let y = (round + i) % 2;
                let s: i8 = if i % 2 == 0 { 1 } else { -1 };
                let cx = if y == 1 { 2.0 } else { -2.0 };
                fixture.pool.push(
                    vec![rng.normal(cx, 0.4), rng.normal(f64::from(s), 0.4), rng.normal(0.0, 0.4)],
                    y,
                    s,
                );
            }
            let ctx = fixture.ctx();
            let a = full.raw_scores(&ctx);
            let b = incremental.raw_scores(&ctx);
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() <= tol,
                    "round {round}: full {x} vs incremental {y} (gap {:e})",
                    (x - y).abs()
                );
            }
        }
    }

    #[test]
    fn incremental_refit_tracks_full_refit_with_frozen_model() {
        // Re-anchor far beyond the horizon: every round after the first is
        // pure rank-1 updates, and must still match the batch refit.
        let mut fixture = Fixture::new(31);
        assert_incremental_tracks_full(&mut fixture, 1000, 25, 1e-8);
    }

    #[test]
    fn incremental_refit_tracks_full_refit_under_eviction() {
        // A sliding window drives the rank-1 *downdate* path every round.
        let mut fixture = Fixture::new(32);
        let mut pool = crate::pool::LabeledPool::with_policy(
            crate::pool::PoolPolicy::SlidingWindow(70),
            5,
        );
        for i in 0..fixture.pool.len() {
            pool.push(
                fixture.pool.features().row(i).to_vec(),
                fixture.pool.labels()[i],
                fixture.pool.sensitives()[i],
            );
        }
        fixture.pool = pool;
        assert_incremental_tracks_full(&mut fixture, 1000, 25, 1e-8);
    }

    #[test]
    fn incremental_refit_tracks_full_refit_under_reservoir() {
        let mut fixture = Fixture::new(33);
        let mut pool = crate::pool::LabeledPool::with_policy(
            crate::pool::PoolPolicy::Reservoir(70, 3),
            5,
        );
        for i in 0..fixture.pool.len() {
            pool.push(
                fixture.pool.features().row(i).to_vec(),
                fixture.pool.labels()[i],
                fixture.pool.sensitives()[i],
            );
        }
        fixture.pool = pool;
        assert_incremental_tracks_full(&mut fixture, 8, 25, 1e-8);
    }

    #[test]
    fn ood_candidates_are_more_desirable() {
        // The fixture's candidates 20..40 are far out-of-distribution; low
        // density → low u → high ω.
        let fixture = Fixture::new(21);
        let ctx = fixture.ctx();
        let mut strategy = Faction::new(FactionParams::default());
        let mut rng = faction_linalg::SeedRng::new(0);
        let w = strategy.desirability(&ctx, &mut rng);
        let familiar: f64 = w[..20].iter().sum::<f64>() / 20.0;
        let ood: f64 = w[20..].iter().sum::<f64>() / 20.0;
        assert!(ood > familiar + 0.2, "ood {ood} vs familiar {familiar}");
    }

    #[test]
    fn lambda_zero_matches_uncertainty_only_selection() {
        let fixture = Fixture::new(22);
        let ctx = fixture.ctx();
        let with_zero_lambda =
            Faction::new(FactionParams { lambda: 0.0, ..Default::default() });
        let no_fair_select = Faction::without_fair_select(FactionParams::default());
        let a = with_zero_lambda.raw_scores(&ctx);
        let b = no_fair_select.raw_scores(&ctx);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fairness_term_changes_ranking() {
        let fixture = Fixture::new(23);
        let ctx = fixture.ctx();
        let plain = Faction::without_fair_select(FactionParams::default()).raw_scores(&ctx);
        let fair =
            Faction::new(FactionParams { lambda: 50.0, ..Default::default() }).raw_scores(&ctx);
        // With a large λ the fairness gaps must perturb at least one score.
        let changed = plain
            .iter()
            .zip(&fair)
            .any(|(a, b)| (a - b).abs() > 1e-9);
        assert!(changed, "λ = 50 must change Eq. 6 scores");
    }

    #[test]
    fn ablation_names_are_distinct() {
        let p = FactionParams::default();
        let names = [
            Faction::new(p).name(),
            Faction::without_fair_select(p).name(),
            Faction::without_fair_reg(p).name(),
            Faction::uncertainty_only(p).name(),
        ];
        let mut unique = names.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn mode_is_probabilistic_with_alpha() {
        let strategy = Faction::new(FactionParams { alpha: 2.5, ..Default::default() });
        assert_eq!(strategy.mode(), AcquisitionMode::Probabilistic { alpha: 2.5 });
    }

    #[test]
    fn training_loss_respects_fair_reg_flag() {
        // Indirect check: the fair loss must differ from CE on a biased
        // batch; the CE-only ablation must not.
        use faction_linalg::Matrix;
        use faction_nn::BatchMeta;
        let logits = Matrix::from_rows(&[vec![-2.0, 2.0], vec![2.0, -2.0]]).unwrap();
        let labels = [1usize, 0];
        let sens = [1i8, -1];
        let meta = BatchMeta { labels: &labels, sensitive: &sens };
        let p = FactionParams::default();
        let (fair_loss, _) = Faction::new(p).training_loss().loss_and_grad(&logits, &meta);
        let (ce_loss, _) =
            Faction::without_fair_reg(p).training_loss().loss_and_grad(&logits, &meta);
        assert!((fair_loss - ce_loss).abs() > 1e-6);
    }
}
