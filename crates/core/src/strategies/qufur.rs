//! The QuFUR baseline (paper Sec. V-A2, [2]): active online learning with
//! hidden shifting domains. QuFUR estimates per-sample uncertainty and turns
//! it into a *query probability* — the same probabilistic acquisition shape
//! FACTION uses, but with no fairness term and no density estimator.
//!
//! Adaptation (as in the paper's baseline section): the uncertainty estimate
//! is the model's predictive entropy, min–max normalized per batch, queried
//! via `Bernoulli(min(α·ω, 1))` trials.

use faction_linalg::{vector, SeedRng};

use crate::selection::AcquisitionMode;
use crate::strategies::{candidate_entropy, SelectionContext, Strategy};

/// Uncertainty-proportional probabilistic querying.
#[derive(Debug, Clone, Copy)]
pub struct QuFur {
    /// Query-rate multiplier (same role as FACTION's `α`).
    pub alpha: f64,
}

impl Default for QuFur {
    fn default() -> Self {
        QuFur { alpha: 3.0 }
    }
}

impl Strategy for QuFur {
    fn name(&self) -> String {
        "QuFUR".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        // Normalized entropy: high uncertainty → high query probability.
        crate::strategies::contain_scores(vector::min_max_normalize(&candidate_entropy(ctx)))
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::Probabilistic { alpha: self.alpha }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut QuFur::default(), 51);
    }

    #[test]
    fn scores_are_normalized() {
        let fixture = Fixture::new(52);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = QuFur::default().desirability(&ctx, &mut rng);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(min.abs() < 1e-12);
    }

    #[test]
    fn mode_carries_alpha() {
        let q = QuFur { alpha: 0.5 };
        assert_eq!(q.mode(), AcquisitionMode::Probabilistic { alpha: 0.5 });
    }
}
