//! The FAL baseline (paper Sec. V-A2, [33]): Fair Active Learning via
//! "Expected Fairness".
//!
//! FAL scores a candidate by combining its informativeness (entropy) with
//! the *expected fairness of the model if the candidate were labeled and
//! added to the training set*, expectation taken over the model's own label
//! posterior. The original implementation retrains a model per candidate and
//! per hypothetical label — which is why the paper's runtime figure (Fig. 5a)
//! shows FAL as by far the most expensive method. We reproduce that
//! structure faithfully with two standard cost controls from the FAL paper
//! itself: only the top-`l` candidates by entropy receive the expensive
//! evaluation (the `l ∈ {64, …, 256}` knob swept in Fig. 3), and the
//! hypothetical retrain runs one epoch on a bounded subsample of the pool.

use faction_linalg::{vector, Matrix, SeedRng};
use faction_nn::{CrossEntropyLoss, Sgd, TrainOptions};

use crate::selection::AcquisitionMode;
use crate::strategies::{candidate_entropy, SelectionContext, Strategy};

/// FAL hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct FalParams {
    /// Number of top-entropy candidates that receive the expensive
    /// expected-fairness evaluation (Fig. 3 sweeps `{64, 96, 128, 196, 256}`).
    pub l: usize,
    /// Weight of the expected-fairness-gain term relative to entropy.
    pub fairness_weight: f64,
    /// Pool subsample bound for each hypothetical retrain.
    pub retrain_subsample: usize,
    /// Probe-set bound for the hypothetical model's DDP evaluation.
    pub probe_subsample: usize,
}

impl Default for FalParams {
    fn default() -> Self {
        FalParams { l: 96, fairness_weight: 2.0, retrain_subsample: 128, probe_subsample: 128 }
    }
}

/// Entropy + expected-fairness sample selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fal {
    /// Strategy hyperparameters.
    pub params: FalParams,
}

impl Fal {
    /// Creates FAL with explicit parameters.
    pub fn new(params: FalParams) -> Self {
        Fal { params }
    }

    /// Hard demographic-parity difference of `model`'s predictions over a
    /// probe feature set.
    fn model_ddp(mlp: &faction_nn::Mlp, probe: &Matrix, probe_sens: &[i8]) -> f64 {
        let preds = mlp.predict(probe);
        faction_fairness::ddp(&preds, probe_sens)
    }
}

impl Strategy for Fal {
    fn name(&self) -> String {
        "FAL".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, rng: &mut SeedRng) -> Vec<f64> {
        let n = ctx.candidates.rows();
        let entropies = candidate_entropy(ctx);
        if ctx.pool.is_empty() {
            return crate::strategies::contain_scores(entropies);
        }
        let probs = ctx.model.mlp().predict_proba(ctx.candidates);

        // Top-l candidates by entropy get the expensive evaluation.
        // NaN-last descending total order: a poisoned entropy must never
        // claim one of the `l` expensive evaluation slots (the old
        // partial_cmp comparator left NaN wherever it sat).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| vector::total_order_desc(entropies[a], entropies[b]));
        let evaluated: Vec<usize> = order.into_iter().take(self.params.l.min(n)).collect();

        // Bounded subsamples for the hypothetical retrains.
        let pool_x = ctx.pool.features();
        let pool_idx =
            rng.sample_indices(ctx.pool.len(), self.params.retrain_subsample.min(ctx.pool.len()));
        let sub_x = faction_nn::mlp::gather_rows(pool_x, &pool_idx);
        let sub_y: Vec<usize> = pool_idx.iter().map(|&i| ctx.pool.labels()[i]).collect();
        let sub_s: Vec<i8> = pool_idx.iter().map(|&i| ctx.pool.sensitives()[i]).collect();
        let probe_idx = rng.sample_indices(n, self.params.probe_subsample.min(n));
        let probe = faction_nn::mlp::gather_rows(ctx.candidates, &probe_idx);
        let probe_sens: Vec<i8> =
            probe_idx.iter().map(|&i| ctx.candidate_sensitives[i]).collect();

        let current_ddp = Self::model_ddp(ctx.model.mlp(), &probe, &probe_sens);

        // Scores: entropy everywhere; evaluated candidates add the expected
        // fairness gain. Non-evaluated candidates are pushed below the
        // evaluated subsample (FAL selects from the subsample), while
        // preserving entropy order among themselves for overflow batches.
        let mut scores: Vec<f64> = entropies.iter().map(|h| h - 1.0e3).collect();
        for &j in &evaluated {
            let mut expected_ddp = 0.0;
            for label in 0..ctx.num_classes {
                // Hypothetically add (x_j, label) and retrain briefly.
                let mut aug_rows: Vec<Vec<f64>> =
                    sub_x.iter_rows().map(|r| r.to_vec()).collect();
                aug_rows.push(ctx.candidates.row(j).to_vec());
                // analyzer:allow(unwrap-in-lib): rows cloned from one matrix plus one equal-width candidate row
                let aug_x = Matrix::from_rows(&aug_rows).expect("rectangular");
                let mut aug_y = sub_y.clone();
                aug_y.push(label);
                let mut aug_s = sub_s.clone();
                aug_s.push(ctx.candidate_sensitives[j]);

                let mut hypothetical = ctx.model.mlp().clone();
                let mut opt = Sgd::new(0.05).with_momentum(0.9);
                let mut train_rng = rng.fork(j as u64 * 2 + label as u64);
                hypothetical.fit(
                    &aug_x,
                    &aug_y,
                    &aug_s,
                    &CrossEntropyLoss,
                    &mut opt,
                    &TrainOptions { epochs: 1, batch_size: 64 },
                    &mut train_rng,
                );
                let ddp = Self::model_ddp(&hypothetical, &probe, &probe_sens);
                expected_ddp += probs.get(j, label) * ddp;
            }
            let fairness_gain = current_ddp - expected_ddp;
            scores[j] = entropies[j] + self.params.fairness_weight * fairness_gain;
        }
        crate::strategies::contain_scores(scores)
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        let mut fal = Fal::new(FalParams { l: 8, ..Default::default() });
        check_strategy_contract(&mut fal, 71);
    }

    #[test]
    fn evaluated_candidates_outrank_unevaluated() {
        let fixture = Fixture::new(72);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let l = 5;
        let mut fal = Fal::new(FalParams { l, ..Default::default() });
        let scores = fal.desirability(&ctx, &mut rng);
        let mut sorted: Vec<f64> = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Exactly l scores should live in the "evaluated" band (> -100).
        let evaluated_count = scores.iter().filter(|&&s| s > -100.0).count();
        assert_eq!(evaluated_count, l);
    }

    #[test]
    fn empty_pool_falls_back_to_entropy() {
        let fixture = Fixture::new(73);
        let mut ctx = fixture.ctx();
        let empty = crate::pool::LabeledPool::new();
        ctx.pool = &empty;
        let mut rng = SeedRng::new(0);
        let mut fal = Fal::new(FalParams { l: 4, ..Default::default() });
        let scores = fal.desirability(&ctx, &mut rng);
        assert!(scores.iter().all(|s| (0.0..=2f64.ln() + 1e-9).contains(s)));
    }
}
