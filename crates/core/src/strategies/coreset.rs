//! Coreset (k-center greedy) selection — the classic diversity-based active
//! learning baseline (Sener & Savarese). Included as an extra
//! non-fairness-aware comparison point: it covers the feature space rather
//! than chasing uncertainty, which makes it a natural foil for FACTION's
//! density-based OOD behavior under environment shift (both favor
//! under-covered regions, but coreset ignores labels, softmax and fairness
//! entirely).

use faction_linalg::{vector, SeedRng};

use crate::selection::AcquisitionMode;
use crate::strategies::{SelectionContext, Strategy};

/// Greedy k-center selection in the learned feature space.
///
/// Desirability of a candidate is its distance to the nearest already-
/// labeled sample *after* a greedy farthest-first pass over the batch; the
/// top-K acquisition then takes the farthest-first ordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coreset;

impl Strategy for Coreset {
    fn name(&self) -> String {
        "Coreset".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        let n = ctx.candidates.rows();
        if n == 0 {
            return Vec::new();
        }
        let candidate_features = ctx.model.mlp().features(ctx.candidates);
        // Min squared distance from each candidate to the labeled pool.
        let mut min_dist: Vec<f64> = if ctx.pool.is_empty() {
            vec![f64::INFINITY; n]
        } else {
            let pool_features = ctx.model.mlp().features(ctx.pool.features());
            (0..n)
                .map(|i| {
                    pool_features
                        .iter_rows()
                        .map(|p| vector::dist2(candidate_features.row(i), p))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect()
        };
        // Greedy farthest-first: repeatedly pick the farthest candidate and
        // fold it into the covered set. Desirability encodes pick order so
        // that top-K replays the greedy sequence.
        let mut desirability = vec![0.0; n];
        let mut remaining = n;
        while remaining > 0 {
            let pick = match vector::argmax(&min_dist) {
                Some(i) if min_dist[i] > f64::NEG_INFINITY => i,
                _ => break,
            };
            desirability[pick] = remaining as f64; // earlier picks score higher
            let picked_row = candidate_features.row(pick).to_vec();
            min_dist[pick] = f64::NEG_INFINITY; // consumed
            for (i, md) in min_dist.iter_mut().enumerate() {
                if *md == f64::NEG_INFINITY {
                    continue;
                }
                let d = vector::dist2(candidate_features.row(i), &picked_row);
                if d < *md {
                    *md = d;
                }
            }
            remaining -= 1;
        }
        crate::strategies::contain_scores(desirability)
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::acquire;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut Coreset, 111);
    }

    #[test]
    fn first_pick_is_farthest_from_pool() {
        let fixture = Fixture::new(112);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = Coreset.desirability(&ctx, &mut rng);
        let first = faction_linalg::vector::argmax(&scores).unwrap();
        // The fixture's far-OOD candidates live at indices 20..40; the first
        // greedy pick must be one of them.
        assert!(first >= 20, "first coreset pick {first} should be OOD");
    }

    #[test]
    fn selection_covers_both_regions() {
        let fixture = Fixture::new(113);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(1);
        let scores = Coreset.desirability(&ctx, &mut rng);
        let picked = acquire(&scores, 12, AcquisitionMode::TopK, &mut rng);
        let near = picked.iter().filter(|&&i| i < 20).count();
        let far = picked.len() - near;
        assert!(near >= 1 && far >= 1, "coverage: near {near}, far {far}");
    }

    #[test]
    fn desirability_encodes_distinct_greedy_ranks() {
        let fixture = Fixture::new(114);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(2);
        let mut scores = Coreset.desirability(&ctx, &mut rng);
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        scores.dedup();
        assert_eq!(scores.len(), 40, "all greedy ranks must be distinct");
    }
}
