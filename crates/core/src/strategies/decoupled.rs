//! The Decoupled baseline — D-FA²L (paper Sec. V-A2, [12]): fairness-aware
//! active learning with decoupled models.
//!
//! One model per sensitive group is trained on that group's labeled data;
//! candidates where the two group models *disagree* most are the promising
//! ones (their label resolves a group-dependent ambiguity). The threshold
//! `α` swept in Fig. 3 gates which disagreement levels are considered
//! informative.

use faction_linalg::{Matrix, SeedRng};
use faction_nn::{CrossEntropyLoss, Mlp, Sgd, TrainOptions};

use crate::selection::AcquisitionMode;
use crate::strategies::{SelectionContext, Strategy};

/// Decoupled-model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DecoupledParams {
    /// Disagreement threshold `α` (Fig. 3 sweeps `{0.1, 0.2, 0.4, 0.6, 0.8}`);
    /// candidates below it are soft-suppressed rather than excluded so the
    /// batch can always be filled.
    pub threshold: f64,
    /// Training epochs per group model per selection round.
    pub epochs: usize,
}

impl Default for DecoupledParams {
    fn default() -> Self {
        DecoupledParams { threshold: 0.2, epochs: 2 }
    }
}

/// Disagreement-based selection with per-group decoupled models.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoupled {
    /// Strategy hyperparameters.
    pub params: DecoupledParams,
}

impl Decoupled {
    /// Creates the Decoupled strategy with explicit parameters.
    pub fn new(params: DecoupledParams) -> Self {
        Decoupled { params }
    }

    /// Trains a fresh group model on the subset of the pool with sensitive
    /// value `group`. Returns `None` when the subset has fewer than two
    /// samples or only one class (nothing to decouple yet).
    fn train_group_model(
        &self,
        ctx: &SelectionContext<'_>,
        group: i8,
        rng: &mut SeedRng,
    ) -> Option<Mlp> {
        let indices: Vec<usize> = (0..ctx.pool.len())
            .filter(|&i| ctx.pool.sensitives()[i] == group)
            .collect();
        if indices.len() < 2 {
            return None;
        }
        let labels: Vec<usize> = indices.iter().map(|&i| ctx.pool.labels()[i]).collect();
        let first = labels[0];
        if labels.iter().all(|&y| y == first) {
            return None;
        }
        let pool_x = ctx.pool.features();
        let x = faction_nn::mlp::gather_rows(pool_x, &indices);
        let sens = vec![group; indices.len()];
        let arch = faction_nn::presets::tiny(x.cols(), ctx.num_classes, rng.fork(0).uniform().to_bits());
        let mut model = Mlp::new(&arch);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        model.fit(
            &x,
            &labels,
            &sens,
            &CrossEntropyLoss,
            &mut opt,
            &TrainOptions { epochs: self.params.epochs, batch_size: 32 },
            rng,
        );
        Some(model)
    }

    fn positive_probs(model: &Mlp, x: &Matrix) -> Vec<f64> {
        let probs = model.predict_proba(x);
        (0..probs.rows()).map(|r| probs.get(r, 1.min(probs.cols() - 1))).collect()
    }
}

impl Strategy for Decoupled {
    fn name(&self) -> String {
        "Decoupled".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, rng: &mut SeedRng) -> Vec<f64> {
        let n = ctx.candidates.rows();
        let mut rng_a = rng.fork(1);
        let mut rng_b = rng.fork(2);
        let model_pos = self.train_group_model(ctx, 1, &mut rng_a);
        let model_neg = self.train_group_model(ctx, -1, &mut rng_b);
        let scores = match (model_pos, model_neg) {
            (Some(a), Some(b)) => {
                let pa = Self::positive_probs(&a, ctx.candidates);
                let pb = Self::positive_probs(&b, ctx.candidates);
                pa.iter()
                    .zip(&pb)
                    .map(|(x, y)| {
                        let disagreement = (x - y).abs();
                        if disagreement >= self.params.threshold {
                            // Qualifying set: D-FA²L samples uniformly among
                            // candidates whose disagreement clears α, so all
                            // qualifiers share a band with random tie-break.
                            // A higher α therefore focuses the batch on the
                            // most extreme disagreements; a lower α spreads
                            // it randomly over a larger set.
                            1.0 + rng.uniform()
                        } else {
                            // Below-threshold candidates rank after every
                            // qualifier, ordered by their disagreement.
                            disagreement / (self.params.threshold + f64::EPSILON)
                        }
                    })
                    .collect()
            }
            // One group unseen so far: no disagreement signal; uniform.
            _ => vec![0.5; n],
        };
        crate::strategies::contain_scores(scores)
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut Decoupled::default(), 91);
    }

    #[test]
    fn falls_back_to_uniform_without_both_groups() {
        let fixture = Fixture::new(92);
        let mut ctx = fixture.ctx();
        // Pool with a single group only.
        let mut single = crate::pool::LabeledPool::new();
        for i in 0..10 {
            single.push(vec![i as f64, 0.0, 0.0], i % 2, 1);
        }
        ctx.pool = &single;
        let mut rng = SeedRng::new(0);
        let scores = Decoupled::default().desirability(&ctx, &mut rng);
        assert!(scores.iter().all(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    fn threshold_partitions_candidates_into_bands() {
        // threshold 0.0: every candidate qualifies → all scores in the
        // qualifier band [1, 2). threshold 0.99: (almost) none qualify →
        // scores fall in the sub-threshold band [0, 1).
        let fixture = Fixture::new(93);
        let ctx = fixture.ctx();
        let mut rng_a = SeedRng::new(7);
        let mut rng_b = SeedRng::new(7);
        let mut lax = Decoupled::new(DecoupledParams { threshold: 0.0, epochs: 2 });
        let mut strict = Decoupled::new(DecoupledParams { threshold: 0.99, epochs: 2 });
        let a = lax.desirability(&ctx, &mut rng_a);
        let b = strict.desirability(&ctx, &mut rng_b);
        assert!(a.iter().all(|&v| v >= 1.0), "all must qualify under threshold 0");
        assert!(
            b.iter().filter(|&&v| v < 1.0).count() > b.len() / 2,
            "most must fail a 0.99 threshold"
        );
    }

    #[test]
    fn selection_differs_across_thresholds() {
        // The α knob must actually change which samples are acquired (the
        // Fig. 3 sweep axis).
        let fixture = Fixture::new(94);
        let ctx = fixture.ctx();
        let mut picks = Vec::new();
        for &threshold in &[0.05, 0.6] {
            let mut rng = SeedRng::new(7);
            let mut strategy = Decoupled::new(DecoupledParams { threshold, epochs: 2 });
            let scores = strategy.desirability(&ctx, &mut rng);
            let mut picked =
                crate::selection::acquire(&scores, 8, AcquisitionMode::TopK, &mut rng);
            picked.sort_unstable();
            picks.push(picked);
        }
        assert_ne!(picks[0], picks[1], "different thresholds must select differently");
    }
}
