//! Entropy-based Active Learning (paper Sec. V-A2, [1], [41]): the classic
//! uncertainty-sampling baseline selecting maximal Shannon entropy.

use faction_linalg::SeedRng;

use crate::selection::AcquisitionMode;
use crate::strategies::{candidate_entropy, SelectionContext, Strategy};

/// Selects the candidates whose predictive distribution has the highest
/// Shannon entropy under the current model.
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyAl;

impl Strategy for EntropyAl {
    fn name(&self) -> String {
        "Entropy-AL".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        crate::strategies::contain_scores(candidate_entropy(ctx))
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut EntropyAl, 41);
    }

    #[test]
    fn entropy_scores_are_bounded_by_log_k() {
        let fixture = Fixture::new(42);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = EntropyAl.desirability(&ctx, &mut rng);
        assert!(scores.iter().all(|&h| (0.0..=2f64.ln() + 1e-9).contains(&h)));
    }

    #[test]
    fn deterministic_given_model() {
        let fixture = Fixture::new(43);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let a = EntropyAl.desirability(&ctx, &mut rng);
        let b = EntropyAl.desirability(&ctx, &mut rng);
        assert_eq!(a, b);
    }
}
