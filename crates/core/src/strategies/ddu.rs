//! The DDU baseline (paper Sec. V-A2, [46]): Deep Deterministic Uncertainty.
//! Epistemic uncertainty is the feature-space GDA density with one component
//! **per class** (no sensitive split); the most uncertain — lowest-density —
//! candidates are queried. This is FACTION minus the fairness machinery and
//! minus the probabilistic acquisition.

use faction_density::{FairDensityConfig, FairDensityEstimator};
use faction_linalg::SeedRng;

use crate::selection::AcquisitionMode;
use crate::strategies::{SelectionContext, Strategy};

/// Class-conditional density-based uncertainty sampling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ddu {
    /// Density-estimator settings.
    pub density: FairDensityConfig,
}

impl Strategy for Ddu {
    fn name(&self) -> String {
        "DDU".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        let n = ctx.candidates.rows();
        let pool_features = ctx.model.mlp().features(ctx.pool.features());
        let estimator = match FairDensityEstimator::fit_class_only(
            &pool_features,
            ctx.pool.labels(),
            ctx.num_classes,
            &self.density,
        ) {
            Ok(e) => e,
            Err(_) => return vec![0.0; n],
        };
        let z = ctx.model.mlp().features(ctx.candidates);
        // Desirability = negative log-density: lowest density (highest
        // epistemic uncertainty) queried first.
        crate::strategies::contain_scores(
            (0..n)
                .map(|i| -estimator.log_density(z.row(i)).unwrap_or(f64::NEG_INFINITY))
                .collect(),
        )
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut Ddu::default(), 61);
    }

    #[test]
    fn ood_candidates_score_higher() {
        let fixture = Fixture::new(62);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = Ddu::default().desirability(&ctx, &mut rng);
        let familiar: f64 = scores[..20].iter().sum::<f64>() / 20.0;
        let ood: f64 = scores[20..].iter().sum::<f64>() / 20.0;
        assert!(ood > familiar, "ood {ood} vs familiar {familiar}");
    }

    #[test]
    fn mode_is_deterministic_topk() {
        assert_eq!(Ddu::default().mode(), AcquisitionMode::TopK);
    }
}
