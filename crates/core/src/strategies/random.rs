//! The naive Random baseline: uniform selection (paper Sec. V-A2).

use faction_linalg::SeedRng;

use crate::selection::AcquisitionMode;
use crate::strategies::{SelectionContext, Strategy};

/// Selects samples uniformly at random.
#[derive(Debug, Clone, Copy, Default)]
pub struct Random;

impl Strategy for Random {
    fn name(&self) -> String {
        "Random".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, rng: &mut SeedRng) -> Vec<f64> {
        (0..ctx.candidates.rows()).map(|_| rng.uniform()).collect()
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut Random, 31);
    }

    #[test]
    fn scores_are_uniform_noise() {
        let fixture = Fixture::new(32);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let a = Random.desirability(&ctx, &mut rng);
        let b = Random.desirability(&ctx, &mut rng);
        assert_ne!(a, b, "fresh noise per call");
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn selection_is_unbiased_across_positions() {
        // Over many draws, the first and last candidate should be picked at
        // similar rates.
        let fixture = Fixture::new(33);
        let ctx = fixture.ctx();
        let mut first = 0;
        let mut last = 0;
        for seed in 0..400 {
            let mut rng = SeedRng::new(seed);
            let scores = Random.desirability(&ctx, &mut rng);
            let picked =
                crate::selection::acquire(&scores, 10, AcquisitionMode::TopK, &mut rng);
            if picked.contains(&0) {
                first += 1;
            }
            if picked.contains(&39) {
                last += 1;
            }
        }
        let ratio = first as f64 / last.max(1) as f64;
        assert!((0.6..1.7).contains(&ratio), "positional bias: {first} vs {last}");
    }
}
