//! Margin sampling (paper Sec. III-B, [42]): the classic uncertainty
//! heuristic comparing the probabilities of the top two classes. Included as
//! an additional non-fairness-aware baseline alongside Entropy-AL — the two
//! coincide for well-calibrated binary models but diverge under skewed
//! confidence, which the shifted environments produce.

use faction_linalg::SeedRng;

use crate::selection::AcquisitionMode;
use crate::strategies::{SelectionContext, Strategy};

/// Selects the candidates with the smallest top-two probability margin.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarginAl;

impl Strategy for MarginAl {
    fn name(&self) -> String {
        "Margin-AL".into()
    }

    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        let probs = ctx.model.mlp().predict_proba(ctx.candidates);
        // Small margin = ambiguous = desirable; invert so higher is better.
        crate::strategies::contain_scores(
            faction_nn::loss::margin_per_row(&probs).into_iter().map(|m| 1.0 - m).collect(),
        )
    }

    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::testutil::{check_strategy_contract, Fixture};

    #[test]
    fn satisfies_strategy_contract() {
        check_strategy_contract(&mut MarginAl, 101);
    }

    #[test]
    fn ambiguous_candidates_outrank_confident_ones() {
        let fixture = Fixture::new(102);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = MarginAl.desirability(&ctx, &mut rng);
        let probs = ctx.model.mlp().predict_proba(ctx.candidates);
        // The candidate with the most extreme confidence must not have the
        // top desirability.
        let most_confident = (0..probs.rows())
            .max_by(|&a, &b| {
                let ca = (probs.get(a, 0) - 0.5).abs();
                let cb = (probs.get(b, 0) - 0.5).abs();
                ca.partial_cmp(&cb).unwrap()
            })
            .unwrap();
        let best = faction_linalg::vector::argmax(&scores).unwrap();
        assert_ne!(best, most_confident);
    }

    #[test]
    fn scores_in_unit_interval() {
        let fixture = Fixture::new(103);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(0);
        let scores = MarginAl.desirability(&ctx, &mut rng);
        assert!(scores.iter().all(|s| (0.0..=1.0 + 1e-12).contains(s)));
    }
}
