//! Active-learning selection strategies: FACTION and the seven baselines of
//! Sec. V-A2, all adapted to the online protocol (applied sequentially at
//! each time step, exactly as the paper adapts them).

use faction_linalg::{Matrix, SeedRng};
use faction_nn::{BatchLoss, CrossEntropyLoss};

use crate::pool::{LabeledPool, OnlineModel};
use crate::selection::AcquisitionMode;

pub mod coreset;
pub mod ddu;
pub mod decoupled;
pub mod entropy;
pub mod faction;
pub mod fal;
pub mod falcur;
pub mod margin;
pub mod qufur;
pub mod random;

pub use coreset::Coreset;
pub use ddu::Ddu;
pub use decoupled::Decoupled;
pub use entropy::EntropyAl;
pub use faction::{Faction, FactionParams, RefitMode};
pub use margin::MarginAl;
pub use fal::Fal;
pub use falcur::FalCur;
pub use qufur::QuFur;
pub use random::Random;

/// Everything a strategy may inspect when scoring unlabeled candidates.
pub struct SelectionContext<'a> {
    /// The learner's current model `θ_{t−1}` (Eq. 6 extracts features and
    /// class probabilities with the *previous* parameters).
    pub model: &'a OnlineModel,
    /// The labeled pool `D_t` accumulated so far.
    pub pool: &'a LabeledPool,
    /// Raw input features of the remaining unlabeled candidates, one row
    /// per candidate.
    pub candidates: &'a Matrix,
    /// Sensitive attribute of each candidate (observable without querying).
    pub candidate_sensitives: &'a [i8],
    /// Number of classes (2 throughout the paper).
    pub num_classes: usize,
}

/// A fair-active-online-learning selection strategy.
pub trait Strategy {
    /// Display name used in result tables (e.g. `"FACTION"`).
    fn name(&self) -> String;

    /// Scores each candidate with a **desirability** in which *higher means
    /// query first* (FACTION's `ω(x)` after Eq. 7; baselines' uncertainty /
    /// disagreement / combined scores).
    fn desirability(&mut self, ctx: &SelectionContext<'_>, rng: &mut SeedRng) -> Vec<f64>;

    /// How desirability turns into acquisitions (probabilistic for FACTION
    /// and QuFUR, deterministic top-K for the rest).
    fn mode(&self) -> AcquisitionMode;

    /// The training loss the runner uses when retraining on the pool.
    /// FACTION returns the fairness-regularized loss (Eq. 9); everything
    /// else — including FACTION's "w/o Fair Reg" ablation — trains with
    /// plain cross-entropy, matching the paper's observation that the
    /// fairness-aware baselines "do not regularize for fairness when
    /// learning".
    fn training_loss(&self) -> Box<dyn BatchLoss> {
        Box::new(CrossEntropyLoss)
    }
}

/// Softmax entropy of the model's predictions for every candidate — shared
/// by several baselines.
pub(crate) fn candidate_entropy(ctx: &SelectionContext<'_>) -> Vec<f64> {
    let probs = ctx.model.mlp().predict_proba(ctx.candidates);
    faction_nn::loss::entropy_per_row(&probs)
}

/// Containment boundary for strategy score outputs (DESIGN.md §10): every
/// strategy routes its desirability vector through here so a NaN/Inf score
/// — a diverged hypothetical retrain, an overflowed distance, a degenerate
/// entropy — becomes a neutral `0.0` instead of poisoning the acquisition
/// ranking. Scrubs are counted in `core.strategy.sanitized_scores`; a
/// fully finite vector passes through untouched.
pub(crate) fn contain_scores(mut scores: Vec<f64>) -> Vec<f64> {
    let scrubbed = faction_linalg::vector::sanitize_scores(&mut scores);
    if scrubbed > 0 {
        faction_telemetry::counter_add("core.strategy.sanitized_scores", scrubbed as u64);
    }
    scores
}

/// The full method lineup of Fig. 2: FACTION plus the seven baselines, with
/// the paper's default hyperparameters.
pub fn paper_lineup(loss: faction_fairness::TotalLossConfig) -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(Faction::new(faction::FactionParams { loss, ..Default::default() })),
        Box::new(Fal::default()),
        Box::new(FalCur::default()),
        Box::new(Decoupled::default()),
        Box::new(QuFur::default()),
        Box::new(Ddu::default()),
        Box::new(EntropyAl),
        Box::new(Random),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::config::ExperimentConfig;
    use faction_linalg::SeedRng;

    /// A small labeled pool + candidate batch with class and group structure
    /// for exercising every strategy the same way.
    pub struct Fixture {
        pub model: OnlineModel,
        pub pool: LabeledPool,
        pub candidates: Matrix,
        pub candidate_sensitives: Vec<i8>,
    }

    impl Fixture {
        pub fn new(seed: u64) -> Self {
            let mut rng = SeedRng::new(seed);
            let mut pool = LabeledPool::new();
            // Four (class, group) cells, linearly structured.
            for i in 0..80 {
                let y = i % 2;
                let s: i8 = if (i / 2) % 2 == 0 { 1 } else { -1 };
                let cx = if y == 1 { 2.0 } else { -2.0 };
                let gx = f64::from(s);
                pool.push(
                    vec![rng.normal(cx, 0.4), rng.normal(gx, 0.4), rng.normal(0.0, 0.4)],
                    y,
                    s,
                );
            }
            let cfg = ExperimentConfig::quick();
            let arch = faction_nn::presets::tiny(3, 2, seed);
            let mut model = OnlineModel::new(&arch, &cfg, seed);
            model.retrain(&pool, &faction_nn::CrossEntropyLoss);
            // Candidates: half familiar, half far out-of-distribution.
            let mut rows = Vec::new();
            let mut sens = Vec::new();
            for i in 0..40 {
                let far = i >= 20;
                let base = if far { 8.0 } else { 0.0 };
                rows.push(vec![
                    rng.normal(base, 0.5),
                    rng.normal(base, 0.5),
                    rng.normal(0.0, 0.5),
                ]);
                sens.push(if i % 2 == 0 { 1 } else { -1 });
            }
            Fixture {
                model,
                pool,
                candidates: Matrix::from_rows(&rows).unwrap(),
                candidate_sensitives: sens,
            }
        }

        pub fn ctx(&self) -> SelectionContext<'_> {
            SelectionContext {
                model: &self.model,
                pool: &self.pool,
                candidates: &self.candidates,
                candidate_sensitives: &self.candidate_sensitives,
                num_classes: 2,
            }
        }
    }

    /// Common contract every strategy must satisfy.
    pub fn check_strategy_contract(strategy: &mut dyn Strategy, seed: u64) {
        let fixture = Fixture::new(seed);
        let ctx = fixture.ctx();
        let mut rng = SeedRng::new(seed ^ 0xABCD);
        let scores = strategy.desirability(&ctx, &mut rng);
        assert_eq!(scores.len(), 40, "{}: one score per candidate", strategy.name());
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{}: scores must be finite",
            strategy.name()
        );
        assert!(!strategy.name().is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_eight_methods_with_unique_names() {
        let lineup = paper_lineup(faction_fairness::TotalLossConfig::default());
        assert_eq!(lineup.len(), 8);
        let mut names: Vec<String> = lineup.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "strategy names must be unique");
    }

    #[test]
    fn lineup_contains_faction_and_all_baselines() {
        let lineup = paper_lineup(faction_fairness::TotalLossConfig::default());
        let names: Vec<String> = lineup.iter().map(|s| s.name()).collect();
        for expected in
            ["FACTION", "FAL", "FAL-CUR", "Decoupled", "QuFUR", "DDU", "Entropy-AL", "Random"]
        {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }
}
