//! Multi-seed aggregation and table rendering for the benchmark harnesses.
//!
//! The paper repeats every experiment five times and reports mean ± standard
//! deviation (Sec. V-A3); this module turns a set of [`RunRecord`]s into the
//! per-task curves of Fig. 2/4/6 and the per-method summaries of Table I.

use serde::{Deserialize, Serialize};

use crate::runner::{RunRecord, TaskRecord};

/// Mean ± standard deviation of one metric at one task position.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct MeanStd {
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean and population standard deviation of the values.
    pub fn of(values: &[f64]) -> MeanStd {
        if values.is_empty() {
            return MeanStd::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        MeanStd { mean, std: var.sqrt() }
    }
}

/// Per-task aggregate across seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskAggregate {
    /// Task position `t`.
    pub task_id: usize,
    /// Environment name.
    pub env_name: String,
    /// Accuracy mean ± std.
    pub accuracy: MeanStd,
    /// DDP mean ± std.
    pub ddp: MeanStd,
    /// EOD mean ± std.
    pub eod: MeanStd,
    /// MI mean ± std.
    pub mi: MeanStd,
}

/// A strategy's aggregated curve over one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatedRun {
    /// Strategy display name.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Number of seeds aggregated.
    pub seeds: usize,
    /// Per-task aggregates in stream order.
    pub tasks: Vec<TaskAggregate>,
    /// Mean total runtime in seconds across seeds.
    pub mean_total_seconds: f64,
}

impl AggregatedRun {
    /// Aggregates runs of the *same strategy on the same dataset* across
    /// seeds.
    ///
    /// # Panics
    /// Panics if `runs` is empty or mixes strategies/datasets/task counts.
    pub fn from_runs(runs: &[RunRecord]) -> AggregatedRun {
        // analyzer:allow(unwrap-in-lib): documented panic contract (see `# Panics` above)
        let first = runs.first().expect("at least one run to aggregate");
        let t = first.records.len();
        for r in runs {
            assert_eq!(r.strategy, first.strategy, "mixed strategies");
            assert_eq!(r.dataset, first.dataset, "mixed datasets");
            assert_eq!(r.records.len(), t, "mixed task counts");
        }
        let collect = |f: &dyn Fn(&TaskRecord) -> f64, task: usize| -> Vec<f64> {
            runs.iter().map(|r| f(&r.records[task])).collect()
        };
        let tasks = (0..t)
            .map(|task| TaskAggregate {
                task_id: first.records[task].task_id,
                env_name: first.records[task].env_name.clone(),
                accuracy: MeanStd::of(&collect(&|r| r.accuracy, task)),
                ddp: MeanStd::of(&collect(&|r| r.ddp, task)),
                eod: MeanStd::of(&collect(&|r| r.eod, task)),
                mi: MeanStd::of(&collect(&|r| r.mi, task)),
            })
            .collect();
        AggregatedRun {
            strategy: first.strategy.clone(),
            dataset: first.dataset.clone(),
            seeds: runs.len(),
            tasks,
            mean_total_seconds: runs.iter().map(|r| r.total_seconds).sum::<f64>()
                / runs.len() as f64,
        }
    }

    /// Mean of the per-task means of a metric (the Table I row format).
    pub fn overall(&self, metric: impl Fn(&TaskAggregate) -> f64) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(&metric).sum::<f64>() / self.tasks.len() as f64
    }
}

/// Renders a fixed-width comparison table in the shape of Table I:
/// one row per aggregated run with runtime and the four metrics.
pub fn render_summary_table(rows: &[AggregatedRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
        "Model", "Runtime(s)", "Acc", "DDP", "EOD", "MI"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<40} {:>10.1} {:>8.4} {:>8.4} {:>8.4} {:>8.4}\n",
            row.strategy,
            row.mean_total_seconds,
            row.overall(|t| t.accuracy.mean),
            row.overall(|t| t.ddp.mean),
            row.overall(|t| t.eod.mean),
            row.overall(|t| t.mi.mean),
        ));
    }
    out
}

/// Renders one metric's per-task curve for several strategies (the Fig. 2 /
/// Fig. 4 series), one line per strategy: `name: v1 v2 v3 …` with ±std.
pub fn render_curves(
    rows: &[AggregatedRun],
    metric_name: &str,
    metric: impl Fn(&TaskAggregate) -> MeanStd,
) -> String {
    let mut out = format!("metric: {metric_name}\n");
    for row in rows {
        out.push_str(&format!("{:<40}", row.strategy));
        for t in &row.tasks {
            let m = metric(t);
            out.push_str(&format!(" {:.3}±{:.3}", m.mean, m.std));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(strategy: &str, seed: u64, accs: &[f64]) -> RunRecord {
        RunRecord {
            strategy: strategy.into(),
            dataset: "D".into(),
            seed,
            records: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| TaskRecord {
                    task_id: i,
                    env_name: format!("e{i}"),
                    accuracy: a,
                    ddp: a / 2.0,
                    eod: a / 4.0,
                    mi: a / 8.0,
                    calibration_gap: a / 16.0,
                    queries: 10,
                    seconds: 1.0,
                    selection_seconds: 0.4,
                    training_seconds: 0.5,
                })
                .collect(),
            total_seconds: 2.0,
        }
    }

    #[test]
    fn mean_std_known_values() {
        let ms = MeanStd::of(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
        let empty = MeanStd::of(&[]);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn aggregation_across_seeds() {
        let runs = vec![record("X", 0, &[0.5, 0.7]), record("X", 1, &[0.7, 0.9])];
        let agg = AggregatedRun::from_runs(&runs);
        assert_eq!(agg.seeds, 2);
        assert_eq!(agg.tasks.len(), 2);
        assert!((agg.tasks[0].accuracy.mean - 0.6).abs() < 1e-12);
        assert!((agg.tasks[1].accuracy.mean - 0.8).abs() < 1e-12);
        assert!((agg.tasks[0].accuracy.std - 0.1).abs() < 1e-12);
        assert!((agg.overall(|t| t.accuracy.mean) - 0.7).abs() < 1e-12);
        assert!((agg.mean_total_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mixed strategies")]
    fn mixed_strategies_rejected() {
        AggregatedRun::from_runs(&[record("X", 0, &[0.5]), record("Y", 1, &[0.5])]);
    }

    #[test]
    fn tables_render_all_rows() {
        let agg = AggregatedRun::from_runs(&[record("FACTION", 0, &[0.8, 0.9])]);
        let table = render_summary_table(&[agg.clone()]);
        assert!(table.contains("FACTION"));
        assert!(table.contains("Acc"));
        let curves = render_curves(&[agg], "accuracy", |t| t.accuracy);
        assert!(curves.contains("accuracy"));
        assert!(curves.contains("0.800"));
        assert!(curves.contains("0.900"));
    }

    #[test]
    fn json_roundtrip() {
        let agg = AggregatedRun::from_runs(&[record("FACTION", 0, &[0.8])]);
        let json = serde_json::to_string(&agg).unwrap();
        let back: AggregatedRun = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strategy, "FACTION");
        assert_eq!(back.tasks.len(), 1);
    }
}
