//! Property-based tests for the streaming normalizer (paper Sec. IV-D).
//!
//! The core invariant: the final range — and therefore every normalized
//! value — depends only on the *set* of scores observed, never on the
//! order they arrived in. That is what makes the one-pass selector's
//! normalization agree with the batch normalizer once the batch has been
//! seen, regardless of arrival order.

use faction_core::streaming::StreamingNormalizer;
use proptest::prelude::*;

fn observe_all(scores: &[f64]) -> StreamingNormalizer {
    let mut n = StreamingNormalizer::new();
    for &s in scores {
        n.observe(s);
    }
    n
}

proptest! {
    #[test]
    fn observation_order_never_changes_the_final_range(
        scores in proptest::collection::vec(-1e6f64..1e6, 1..40),
        seed in 0u64..1000,
    ) {
        let forward = observe_all(&scores);

        let mut reversed: Vec<f64> = scores.clone();
        reversed.reverse();
        let backward = observe_all(&reversed);

        // A deterministic shuffle driven by the proptest-chosen seed.
        let mut shuffled = scores.clone();
        let mut rng = faction_linalg::SeedRng::new(seed);
        rng.shuffle(&mut shuffled);
        let permuted = observe_all(&shuffled);

        prop_assert_eq!(forward.count(), backward.count());
        prop_assert_eq!(forward.count(), permuted.count());
        for probe in [-2e6, -1.0, 0.0, 0.5, 1.0, 2e6] {
            let reference = forward.normalize(probe);
            prop_assert_eq!(reference, backward.normalize(probe), "probe {}", probe);
            prop_assert_eq!(reference, permuted.normalize(probe), "probe {}", probe);
        }
    }

    #[test]
    fn non_finite_interleavings_are_order_independent_too(
        scores in proptest::collection::vec(-100.0f64..100.0, 0..10),
        nans in 0usize..4,
    ) {
        // Non-finite scores count but never move the range, wherever they
        // land in the stream.
        let clean = observe_all(&scores);

        let mut polluted: Vec<f64> = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            if i < nans {
                polluted.push(f64::NAN);
                polluted.push(f64::INFINITY);
            }
            polluted.push(s);
        }
        let dirty = observe_all(&polluted);

        for probe in [-200.0, 0.0, 37.5, 200.0] {
            prop_assert_eq!(clean.normalize(probe), dirty.normalize(probe), "probe {}", probe);
        }
    }
}
