//! Fault-injection suite: the no-poison contract of DESIGN.md §10.
//!
//! Every strategy in the paper lineup must survive a deliberately poisoned
//! stream — NaN/Inf feature entries, a vanishing sensitive group, a
//! constant-feature task, a single-class task, all at once — and still
//! behave like a correct protocol: the full label budget is spent, every
//! reported metric is finite, results are byte-identical across worker
//! counts, and degradation is visible in telemetry rather than silently
//! absorbed. A clean stream, conversely, must report *zero* degradation
//! and reproduce itself byte for byte.

use std::sync::{Arc, Mutex};

use faction_core::strategies::{Faction, FactionParams, RefitMode, SelectionContext, Strategy};
use faction_core::{run_experiment, AcquisitionMode, ExperimentConfig, PoolPolicy, RunRecord};
use faction_data::{datasets, poison, PoisonSpec, Scale, TaskStream};
use faction_engine::job::build_strategy;
use faction_engine::pool::scoped_for_each;
use faction_linalg::SeedRng;
use faction_telemetry::{Handle, Registry};

/// The eight-method paper lineup (FACTION + seven baselines).
const LINEUP: &[&str] =
    &["faction", "fal", "fal-cur", "decoupled", "qufur", "ddu", "entropy", "random"];

const BUDGET: usize = 16;

fn base_stream() -> TaskStream {
    let mut stream = datasets::rcmnist(1, Scale::Quick);
    stream.tasks.truncate(3);
    for (i, t) in stream.tasks.iter_mut().enumerate() {
        t.samples.truncate(70);
        t.id = i;
    }
    stream
}

fn poisoned_stream() -> TaskStream {
    poison(&base_stream(), &PoisonSpec::havoc(5))
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        budget: BUDGET,
        acquisition_batch: 6,
        warm_start: 16,
        epochs_per_iteration: 2,
        train_batch_size: 32,
        learning_rate: 0.05,
        ..ExperimentConfig::quick()
    }
}

fn run_one(name: &str, stream: &TaskStream, seed: u64) -> RunRecord {
    let mut strategy =
        build_strategy(name, Default::default(), 1.0, true).expect("known strategy name");
    let arch = faction_nn::presets::tiny(stream.input_dim, stream.num_classes, 0);
    run_experiment(stream, strategy.as_mut(), &arch, &cfg(), seed)
}

fn canonical_json(record: &RunRecord) -> String {
    serde_json::to_string(&record.canonicalized()).expect("serializable record")
}

#[test]
fn every_strategy_survives_the_poisoned_stream() {
    let stream = poisoned_stream();
    for &name in LINEUP {
        let record = run_one(name, &stream, 42);
        assert_eq!(record.records.len(), stream.len(), "{name}: all tasks recorded");
        for r in &record.records {
            assert_eq!(
                r.queries, BUDGET,
                "{name}: task {} spent {} of {BUDGET} despite poison",
                r.task_id, r.queries
            );
            for (metric, v) in [
                ("accuracy", r.accuracy),
                ("ddp", r.ddp),
                ("eod", r.eod),
                ("mi", r.mi),
                ("calibration_gap", r.calibration_gap),
            ] {
                assert!(v.is_finite(), "{name}: task {} {metric} = {v}", r.task_id);
            }
        }
    }
}

#[test]
fn poisoned_results_are_byte_identical_across_worker_counts() {
    let stream = poisoned_stream();
    let serial: Vec<String> =
        LINEUP.iter().map(|name| canonical_json(&run_one(name, &stream, 7))).collect();
    let parallel = Arc::new(Mutex::new(vec![None::<String>; LINEUP.len()]));
    scoped_for_each(8, LINEUP, |i, name| {
        let json = canonical_json(&run_one(name, &stream, 7));
        parallel.lock().expect("no poisoned lock")[i] = Some(json);
    });
    let parallel = parallel.lock().expect("no poisoned lock");
    for (i, name) in LINEUP.iter().enumerate() {
        assert_eq!(
            Some(&serial[i]),
            parallel[i].as_ref(),
            "{name}: jobs=1 vs jobs=8 diverged on a poisoned stream"
        );
    }
}

/// A strategy that emits pure NaN scores every round.
struct NanScores;
impl Strategy for NanScores {
    fn name(&self) -> String {
        "NaNScores".into()
    }
    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        vec![f64::NAN; ctx.candidates.rows()]
    }
    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

/// A strategy that returns the wrong number of scores.
struct WrongLength;
impl Strategy for WrongLength {
    fn name(&self) -> String {
        "WrongLength".into()
    }
    fn desirability(&mut self, ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        vec![0.5; ctx.candidates.rows() / 2]
    }
    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

/// A strategy that panics on every scoring call.
struct Panicky;
impl Strategy for Panicky {
    fn name(&self) -> String {
        "Panicky".into()
    }
    fn desirability(&mut self, _ctx: &SelectionContext<'_>, _rng: &mut SeedRng) -> Vec<f64> {
        panic!("injected strategy failure");
    }
    fn mode(&self) -> AcquisitionMode {
        AcquisitionMode::TopK
    }
}

#[test]
fn failing_strategies_degrade_to_uniform_random_rounds() {
    // Panics are expected inside this test (the runner contains them);
    // silence the default hook so the test log stays readable.
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let stream = base_stream();
    let arch = faction_nn::presets::tiny(stream.input_dim, stream.num_classes, 0);
    let mut faulty: Vec<Box<dyn Strategy>> =
        vec![Box::new(NanScores), Box::new(WrongLength), Box::new(Panicky)];
    for strategy in &mut faulty {
        let name = strategy.name();
        let registry = Arc::new(Registry::new());
        let record = {
            let handle = Handle::from(registry.clone());
            let _scope = handle.enter();
            run_experiment(&stream, strategy.as_mut(), &arch, &cfg(), 3)
        };
        for r in &record.records {
            assert_eq!(r.queries, BUDGET, "{name}: task {} must still spend the budget", r.task_id);
        }
        let degraded = registry.snapshot().counter("core.runner.degraded_rounds").unwrap_or(0);
        let rounds = registry.snapshot().counter("core.runner.rounds").unwrap_or(0);
        assert_eq!(
            degraded, rounds,
            "{name}: every scored round must be counted as degraded"
        );
        assert!(degraded > 0, "{name}: degradation must be visible in telemetry");
    }
    std::panic::set_hook(prior_hook);
}

#[test]
fn clean_runs_report_zero_degradation_and_reproduce_exactly() {
    let stream = base_stream();
    for &name in ["faction", "entropy"].iter() {
        let registry = Arc::new(Registry::new());
        let record = {
            let handle = Handle::from(registry.clone());
            let _scope = handle.enter();
            run_one(name, &stream, 11)
        };
        let snapshot = registry.snapshot();
        for key in [
            "core.runner.degraded_rounds",
            "core.runner.sanitized_values",
            "core.strategy.sanitized_scores",
            "density.ridge_escalations",
            "density.fallback_components",
            "density.gda.nonfinite_rows_skipped",
        ] {
            assert_eq!(
                snapshot.counter(key),
                None,
                "{name}: clean stream must not trip the {key} containment path"
            );
        }
        // The guards are pass-through on clean data: a second identically
        // seeded run (recording off) is byte-identical.
        assert_eq!(canonical_json(&record), canonical_json(&run_one(name, &stream, 11)));
    }
}

#[test]
fn poisoned_runs_surface_containment_in_telemetry() {
    let stream = poisoned_stream();
    let registry = Arc::new(Registry::new());
    {
        let handle = Handle::from(registry.clone());
        let _scope = handle.enter();
        run_one("faction", &stream, 42);
    }
    let snapshot = registry.snapshot();
    // NaN/Inf entries reach the runner's data boundary every round, so the
    // scrub counter must be hot; the 2%/1% entry rates make hits certain at
    // this stream size.
    assert!(
        snapshot.counter("core.runner.sanitized_values").unwrap_or(0) > 0,
        "feature scrubbing must be visible in telemetry"
    );
}

#[test]
fn bounded_pools_survive_poison_under_incremental_refit() {
    // The §10 no-poison contract extended to the PR 6 machinery: a poisoned
    // stream driven through the incremental-refit path with an evicting
    // pool must still spend the budget with finite metrics, and the
    // containment must be visible — evictions counted, and at least one
    // re-anchor of the rank-1 state (forced here via a tiny period).
    let stream = poisoned_stream();
    for policy in [PoolPolicy::SlidingWindow(40), PoolPolicy::Reservoir(40, 9)] {
        let registry = Arc::new(Registry::new());
        let record = {
            let handle = Handle::from(registry.clone());
            let _scope = handle.enter();
            let mut strategy = Faction::new(FactionParams {
                refit: RefitMode::Incremental { reanchor_every: 2 },
                ..FactionParams::default()
            });
            let arch = faction_nn::presets::tiny(stream.input_dim, stream.num_classes, 0);
            let mut config = cfg();
            config.pool_policy = policy;
            run_experiment(&stream, &mut strategy, &arch, &config, 42)
        };
        assert_eq!(record.records.len(), stream.len(), "{policy}: all tasks recorded");
        for r in &record.records {
            assert_eq!(r.queries, BUDGET, "{policy}: task {} must spend the budget", r.task_id);
            for (metric, v) in [
                ("accuracy", r.accuracy),
                ("ddp", r.ddp),
                ("eod", r.eod),
                ("mi", r.mi),
                ("calibration_gap", r.calibration_gap),
            ] {
                assert!(v.is_finite(), "{policy}: task {} {metric} = {v}", r.task_id);
            }
        }
        let snapshot = registry.snapshot();
        assert!(
            snapshot.counter("core.pool.evictions").unwrap_or(0) > 0,
            "{policy}: a 40-cap pool over 64 labels must evict"
        );
        assert!(
            snapshot.counter("density.incremental.reanchors").unwrap_or(0) > 0,
            "{policy}: the re-anchor path must fire and be visible in telemetry"
        );
    }
}

#[test]
fn three_class_stream_reports_finite_calibration_gap() {
    // Hand-built 3-class stream: the calibration gap must generalize past
    // the binary positive-class reduction (confidence calibration) and stay
    // finite.
    use faction_data::{Sample, Task};
    let mut rng = SeedRng::new(77);
    let tasks: Vec<Task> = (0..2)
        .map(|t| Task {
            id: t,
            env: 0,
            env_name: "tri".into(),
            samples: (0..60)
                .map(|i| {
                    let label = i % 3;
                    let c = label as f64 * 3.0;
                    Sample {
                        x: vec![rng.normal(c, 0.5), rng.normal(-c, 0.5)],
                        sensitive: if i % 2 == 0 { 1 } else { -1 },
                        label,
                        env: 0,
                    }
                })
                .collect(),
        })
        .collect();
    let stream = TaskStream {
        name: "TriClass".into(),
        input_dim: 2,
        num_classes: 3,
        tasks,
    };
    let arch = faction_nn::presets::tiny(stream.input_dim, 3, 0);
    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(faction_core::strategies::EntropyAl),
        Box::new(faction_core::strategies::Random),
    ];
    for strategy in &mut strategies {
        let record = run_experiment(&stream, strategy.as_mut(), &arch, &cfg(), 13);
        for r in &record.records {
            assert!(
                r.calibration_gap.is_finite(),
                "task {}: calibration gap {} must be finite with 3 classes",
                r.task_id,
                r.calibration_gap
            );
            assert!(r.accuracy.is_finite());
        }
    }
}
