//! Multi-valued sensitive attribute streams (paper Sec. III-A extension).
//!
//! The main generator ([`crate::generator`]) follows the paper's binary
//! `s ∈ {−1, +1}` setting. This module builds streams whose sensitive
//! attribute ranges over `k ≥ 2` groups (e.g. multiple age brackets or
//! racial groups *as the protected attribute*, rather than as environments
//! the way FairFace uses them), so the multi-group fairness machinery
//! (`faction-fairness::multi`, `faction-core::MultiGroupFairLoss`) can be
//! exercised end-to-end through the same protocol runner.

use faction_linalg::SeedRng;

use crate::task::{Sample, Task, TaskStream};
use crate::Scale;

/// Configuration of a multi-group stream.
#[derive(Debug, Clone)]
pub struct MultiGroupSpec {
    /// Number of sensitive groups `k ≥ 2`; group codes are `0..k` as `i8`.
    pub groups: usize,
    /// Feature dimensionality (≥ 3).
    pub dim: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Samples per task at full scale.
    pub samples_per_task: usize,
    /// How strongly each group's features are offset along its own
    /// direction (the group-identifiability channel).
    pub group_separation: f64,
    /// Distance between the two class means.
    pub class_separation: f64,
    /// Per-group label base rates (length `groups`); unequal rates create
    /// the group–label correlation fairness must fight. Defaults to a
    /// linear ramp `0.35 ..= 0.65`.
    pub base_rates: Vec<f64>,
    /// Probability of flipping the observed label (aleatoric noise).
    pub label_noise: f64,
    /// Mean shift magnitude applied from the second half of the stream on
    /// (a single environment change).
    pub shift_magnitude: f64,
}

impl Default for MultiGroupSpec {
    fn default() -> Self {
        MultiGroupSpec {
            groups: 3,
            dim: 8,
            tasks: 6,
            samples_per_task: 400,
            group_separation: 2.0,
            class_separation: 3.0,
            base_rates: vec![0.35, 0.5, 0.65],
            label_noise: 0.05,
            shift_magnitude: 2.0,
        }
    }
}

/// Generates the stream described by `spec`.
///
/// # Panics
/// Panics if `groups < 2`, `dim < 3`, or `base_rates.len() != groups`.
pub fn multi_group_stream(spec: &MultiGroupSpec, seed: u64, scale: Scale) -> TaskStream {
    assert!(spec.groups >= 2, "need at least two sensitive groups");
    assert!(spec.dim >= 3, "need at least three feature dimensions");
    assert_eq!(spec.base_rates.len(), spec.groups, "one base rate per group");
    let mut rng = SeedRng::new(seed);
    // Fixed per-group directions (part of the benchmark definition).
    let group_dirs: Vec<Vec<f64>> = (0..spec.groups)
        .map(|g| {
            let mut geometry = SeedRng::new(0x9009_0000 ^ g as u64);
            let mut v = geometry.standard_normal_vec(spec.dim);
            let n = faction_linalg::vector::norm2(&v).max(f64::MIN_POSITIVE);
            faction_linalg::vector::scale(&mut v, 1.0 / n);
            v
        })
        .collect();

    let n = scale.samples(spec.samples_per_task);
    let tasks = (0..spec.tasks)
        .map(|task_id| {
            let mut task_rng = rng.fork(task_id as u64);
            let shifted = task_id >= spec.tasks / 2;
            let env = usize::from(shifted);
            let samples = (0..n)
                .map(|_| {
                    let group = task_rng.index(spec.groups);
                    let y_true = usize::from(task_rng.bernoulli(spec.base_rates[group]));
                    let mut x = task_rng.standard_normal_vec(spec.dim);
                    x[0] += if y_true == 1 {
                        spec.class_separation / 2.0
                    } else {
                        -spec.class_separation / 2.0
                    };
                    faction_linalg::vector::axpy(
                        spec.group_separation,
                        &group_dirs[group],
                        &mut x,
                    );
                    if shifted {
                        x[spec.dim - 1] += spec.shift_magnitude;
                    }
                    let label = if task_rng.bernoulli(spec.label_noise) {
                        1 - y_true
                    } else {
                        y_true
                    };
                    Sample { x, sensitive: group as i8, label, env }
                })
                .collect();
            Task {
                id: task_id,
                env,
                env_name: if shifted { "shifted".into() } else { "base".into() },
                samples,
            }
        })
        .collect();
    TaskStream {
        name: format!("MultiGroup-k{}", spec.groups),
        input_dim: spec.dim,
        num_classes: 2,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_requested_shape() {
        let spec = MultiGroupSpec::default();
        let stream = multi_group_stream(&spec, 1, Scale::Quick);
        assert_eq!(stream.len(), 6);
        assert_eq!(stream.input_dim, 8);
        assert_eq!(stream.num_environments(), 2);
    }

    #[test]
    fn all_groups_are_present() {
        let spec = MultiGroupSpec::default();
        let stream = multi_group_stream(&spec, 2, Scale::Full);
        let mut seen: Vec<i8> = stream.tasks[0].sensitives();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn base_rates_differ_by_group() {
        let spec = MultiGroupSpec::default();
        let stream = multi_group_stream(&spec, 3, Scale::Full);
        let task = &stream.tasks[0];
        let rate = |g: i8| {
            let members: Vec<&crate::task::Sample> =
                task.samples.iter().filter(|s| s.sensitive == g).collect();
            members.iter().filter(|s| s.label == 1).count() as f64 / members.len() as f64
        };
        assert!(rate(0) < rate(2) - 0.15, "rates {} vs {}", rate(0), rate(2));
    }

    #[test]
    fn environment_shift_kicks_in_midstream() {
        let spec = MultiGroupSpec::default();
        let stream = multi_group_stream(&spec, 4, Scale::Full);
        let mean_last_dim = |t: &crate::task::Task| {
            t.samples.iter().map(|s| s.x[7]).sum::<f64>() / t.len() as f64
        };
        let before = mean_last_dim(&stream.tasks[0]);
        let after = mean_last_dim(&stream.tasks[5]);
        assert!(after - before > 1.0, "shift missing: {before} -> {after}");
    }

    #[test]
    fn determinism() {
        let spec = MultiGroupSpec::default();
        let a = multi_group_stream(&spec, 9, Scale::Quick);
        let b = multi_group_stream(&spec, 9, Scale::Quick);
        assert_eq!(a.tasks[0].samples, b.tasks[0].samples);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_group() {
        let spec = MultiGroupSpec { groups: 1, base_rates: vec![0.5], ..Default::default() };
        multi_group_stream(&spec, 0, Scale::Quick);
    }
}
