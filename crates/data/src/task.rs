//! Core data types: samples, tasks, and task streams.

use faction_linalg::Matrix;

/// One observation in the stream: features, sensitive attribute, label, and
/// the (hidden) environment it was generated in.
///
/// The label is physically present on every sample — this mirrors the
/// paper's protocol, where labels exist but are *invisible* to the learner
/// until queried through the [`crate::Oracle`] (and are used freely for
/// test-time metric computation, Sec. IV-F: "labels available only for
/// calculating test metrics").
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input feature vector `x ∈ ℝ^d`.
    pub x: Vec<f64>,
    /// Sensitive attribute `s ∈ {−1, +1}`.
    pub sensitive: i8,
    /// Ground-truth class label `y ∈ {0, 1}`.
    pub label: usize,
    /// Environment index this sample was drawn from.
    pub env: usize,
}

/// A task `D_t`: one batch of the sequential stream, drawn from a single
/// environment.
#[derive(Debug, Clone)]
pub struct Task {
    /// Position in the stream, `t ∈ [T]`.
    pub id: usize,
    /// Environment index (several consecutive tasks share an environment).
    pub env: usize,
    /// Human-readable environment name, e.g. `"rot30"` or `"Bronx-Q2"`.
    pub env_name: String,
    /// The task's samples.
    pub samples: Vec<Sample>,
}

impl Task {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the task has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Stacks all feature vectors into an `(n, d)` matrix.
    ///
    /// # Panics
    /// Panics if the task is empty or features are ragged (generator bug).
    pub fn features(&self) -> Matrix {
        let rows: Vec<Vec<f64>> = self.samples.iter().map(|s| s.x.clone()).collect();
        // analyzer:allow(unwrap-in-lib): documented panic contract (see `# Panics` above)
        Matrix::from_rows(&rows).expect("task features are rectangular and non-empty")
    }

    /// Stacks the feature vectors of a subset of samples, by index.
    pub fn features_of(&self, indices: &[usize]) -> Matrix {
        let rows: Vec<Vec<f64>> = indices.iter().map(|&i| self.samples[i].x.clone()).collect();
        // analyzer:allow(unwrap-in-lib): same generator invariant as `features` above
        Matrix::from_rows(&rows).expect("subset features are rectangular and non-empty")
    }

    /// Like [`Task::features_of`], but writes into a caller-provided buffer
    /// so the acquisition loop can reuse one candidate matrix across rounds
    /// (the pool only shrinks, so the buffer reaches its high-water size on
    /// round one and never reallocates again).
    pub fn features_of_into(&self, indices: &[usize], out: &mut Matrix) {
        let d = self.samples.first().map_or(0, |s| s.x.len());
        out.reset_to_zeros(indices.len(), d);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(&self.samples[i].x);
        }
    }

    /// Ground-truth labels (test-metric use only; learners must go through
    /// the oracle).
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Sensitive attributes. The paper treats `s` as observable without
    /// querying (it is part of the input, not the label).
    pub fn sensitives(&self) -> Vec<i8> {
        self.samples.iter().map(|s| s.sensitive).collect()
    }

    /// Empirical label–sensitive alignment: fraction of samples where
    /// `s = +1 ⇔ y = 1`. `0.5` means no correlation; the RCMNIST bias
    /// coefficients target exactly this statistic.
    pub fn label_sensitive_alignment(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.5;
        }
        let aligned = self
            .samples
            .iter()
            .filter(|s| (s.sensitive == 1) == (s.label == 1))
            .count();
        aligned as f64 / self.samples.len() as f64
    }
}

/// A full sequential benchmark: an ordered list of tasks plus stream-level
/// metadata.
#[derive(Debug, Clone)]
pub struct TaskStream {
    /// Dataset name, e.g. `"RCMNIST"`.
    pub name: String,
    /// Feature dimensionality `d`.
    pub input_dim: usize,
    /// Number of classes (2 throughout the paper's experiments).
    pub num_classes: usize,
    /// The ordered tasks `{D_t}_{t=1}^T`.
    pub tasks: Vec<Task>,
}

impl TaskStream {
    /// Number of tasks `T`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the stream has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of distinct environments in the stream.
    pub fn num_environments(&self) -> usize {
        let mut envs: Vec<usize> = self.tasks.iter().map(|t| t.env).collect();
        envs.sort_unstable();
        envs.dedup();
        envs.len()
    }

    /// Total sample count across all tasks.
    pub fn total_samples(&self) -> usize {
        self.tasks.iter().map(Task::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(x: Vec<f64>, s: i8, y: usize) -> Sample {
        Sample { x, sensitive: s, label: y, env: 0 }
    }

    fn toy_task() -> Task {
        Task {
            id: 0,
            env: 0,
            env_name: "e0".into(),
            samples: vec![
                sample(vec![1.0, 2.0], 1, 1),
                sample(vec![3.0, 4.0], -1, 0),
                sample(vec![5.0, 6.0], 1, 0),
            ],
        }
    }

    #[test]
    fn features_matrix_layout() {
        let t = toy_task();
        let f = t.features();
        assert_eq!(f.shape(), (3, 2));
        assert_eq!(f.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn features_of_subset() {
        let t = toy_task();
        let f = t.features_of(&[2, 0]);
        assert_eq!(f.shape(), (2, 2));
        assert_eq!(f.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn features_of_into_reuses_buffer() {
        let t = toy_task();
        let mut buf = Matrix::zeros(0, 0);
        t.features_of_into(&[2, 0], &mut buf);
        assert_eq!(buf, t.features_of(&[2, 0]));
        // Shrinking reuse keeps the results identical to a fresh build.
        t.features_of_into(&[1], &mut buf);
        assert_eq!(buf, t.features_of(&[1]));
    }

    #[test]
    fn labels_and_sensitives() {
        let t = toy_task();
        assert_eq!(t.labels(), vec![1, 0, 0]);
        assert_eq!(t.sensitives(), vec![1, -1, 1]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn alignment_statistic() {
        let t = toy_task();
        // Aligned: (s=1,y=1) yes; (s=-1,y=0) yes; (s=1,y=0) no → 2/3.
        assert!((t.label_sensitive_alignment() - 2.0 / 3.0).abs() < 1e-12);
        let empty = Task { id: 0, env: 0, env_name: String::new(), samples: vec![] };
        assert_eq!(empty.label_sensitive_alignment(), 0.5);
    }

    #[test]
    fn stream_aggregates() {
        let mut t1 = toy_task();
        t1.env = 0;
        let mut t2 = toy_task();
        t2.id = 1;
        t2.env = 1;
        let stream = TaskStream {
            name: "toy".into(),
            input_dim: 2,
            num_classes: 2,
            tasks: vec![t1, t2],
        };
        assert_eq!(stream.len(), 2);
        assert_eq!(stream.num_environments(), 2);
        assert_eq!(stream.total_samples(), 6);
        assert!(!stream.is_empty());
    }
}
