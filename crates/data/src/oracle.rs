//! The labeling oracle.
//!
//! In active online learning the incoming task is unlabeled; the learner may
//! *query* the oracle for individual labels within a budget `B` per task
//! (paper Sec. III-C / IV-A). The oracle tracks the number of queries so the
//! query-complexity accounting of Theorem 1 and the label budgets of the
//! experiments are enforced by construction rather than convention.

use crate::task::Task;

/// A budget-tracking labeling oracle for one task.
#[derive(Debug)]
pub struct Oracle<'a> {
    task: &'a Task,
    budget: usize,
    queries: usize,
}

impl<'a> Oracle<'a> {
    /// Wraps a task with a per-task budget `B`.
    pub fn new(task: &'a Task, budget: usize) -> Self {
        Oracle { task, budget, queries: 0 }
    }

    /// Remaining queries before the budget is exhausted.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.queries)
    }

    /// Total queries made so far (the `q_t` of Theorem 1's query
    /// complexity).
    pub fn queries_made(&self) -> usize {
        self.queries
    }

    /// Reveals the label of sample `index`, consuming one unit of budget.
    ///
    /// Returns `None` once the budget is exhausted — the learner must stop
    /// querying for the current task.
    ///
    /// # Panics
    /// Panics if `index` is out of range for the task.
    pub fn query(&mut self, index: usize) -> Option<usize> {
        assert!(index < self.task.len(), "oracle query index out of range");
        if self.queries >= self.budget {
            return None;
        }
        self.queries += 1;
        Some(self.task.samples[index].label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Sample;

    fn task(n: usize) -> Task {
        Task {
            id: 0,
            env: 0,
            env_name: "e".into(),
            samples: (0..n)
                .map(|i| Sample { x: vec![i as f64], sensitive: 1, label: i % 2, env: 0 })
                .collect(),
        }
    }

    #[test]
    fn reveals_true_labels() {
        let t = task(4);
        let mut oracle = Oracle::new(&t, 10);
        assert_eq!(oracle.query(0), Some(0));
        assert_eq!(oracle.query(1), Some(1));
        assert_eq!(oracle.queries_made(), 2);
    }

    #[test]
    fn budget_is_enforced() {
        let t = task(5);
        let mut oracle = Oracle::new(&t, 2);
        assert!(oracle.query(0).is_some());
        assert!(oracle.query(1).is_some());
        assert_eq!(oracle.remaining(), 0);
        assert_eq!(oracle.query(2), None);
        assert_eq!(oracle.queries_made(), 2, "denied queries must not count");
    }

    #[test]
    fn denials_leave_accounting_untouched() {
        // Once exhausted, every further query — however many, whatever the
        // index — is denied without moving the counters. This is the
        // invariant the runner's pool bookkeeping leans on: a denied query
        // adds nothing to the pool and consumes nothing from the budget.
        let t = task(6);
        let mut oracle = Oracle::new(&t, 3);
        for i in 0..3 {
            assert!(oracle.query(i).is_some());
        }
        for _ in 0..4 {
            assert_eq!(oracle.query(5), None);
            assert_eq!(oracle.queries_made(), 3);
            assert_eq!(oracle.remaining(), 0);
        }
    }

    #[test]
    fn mid_batch_exhaustion_denies_the_tail() {
        // A batch larger than the remaining budget is the exact mid-batch
        // situation the runner hits on its final round: the leading queries
        // succeed, the tail is denied, and the success count lands exactly
        // on the budget.
        let t = task(8);
        let mut oracle = Oracle::new(&t, 5);
        assert!(oracle.query(0).is_some());
        assert!(oracle.query(1).is_some());
        let batch = [2usize, 3, 4, 5, 6];
        let granted = batch.iter().filter(|&&i| oracle.query(i).is_some()).count();
        assert_eq!(granted, 3, "only the remaining budget may be granted");
        assert_eq!(oracle.queries_made(), 5);
        assert_eq!(oracle.remaining(), 0);
    }

    #[test]
    fn zero_budget_denies_everything() {
        let t = task(3);
        let mut oracle = Oracle::new(&t, 0);
        assert_eq!(oracle.remaining(), 0);
        assert_eq!(oracle.query(0), None);
        assert_eq!(oracle.queries_made(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let t = task(2);
        let mut oracle = Oracle::new(&t, 5);
        oracle.query(7);
    }
}
