//! Streaming task generators simulating the five FACTION evaluation
//! datasets (paper Sec. V-A1).
//!
//! The raw corpora (Rotated-Colored-MNIST, CelebA, FairFace, FFHQ-Features,
//! NY Stop-and-Frisk) are not redistributable / not available offline, and
//! the paper's method never touches pixels directly — it operates on learned
//! feature representations. Per the substitution rule in `DESIGN.md` §3,
//! each dataset is therefore simulated as a **latent-factor task stream**
//! that preserves exactly the structure the algorithms interact with:
//!
//! * sequential tasks grouped into *environments* with distribution shift
//!   between environments (rotations, attribute-combination mean shifts,
//!   per-race geometry, area × quarter drift);
//! * a binary label and a binary sensitive attribute with a controlled
//!   *label–sensitive correlation* (e.g. RCMNIST's color–label coefficients
//!   `{0.9, 0.8, 0.7, 0.6}`);
//! * class overlap (aleatoric noise) and group imbalance;
//! * task counts matching the paper: 12 / 12 / 21 / 12 / 16.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod datasets;
pub mod multigroup;
pub mod generator;
pub mod oracle;
pub mod poison;
pub mod stats;
pub mod task;

pub use generator::{EnvironmentSpec, StreamSpec};
pub use oracle::Oracle;
pub use poison::{poison, PoisonSpec, VanishGroup};
pub use task::{Sample, Task, TaskStream};

/// How much data to generate: `Full` approximates the paper's task sizes,
/// `Quick` is sized for unit tests and `--quick` harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Paper-scale tasks (hundreds to ~a thousand samples per task).
    #[default]
    Full,
    /// Small tasks for tests and smoke runs.
    Quick,
}

impl Scale {
    /// Scales a full-size per-task sample count down for quick runs.
    pub fn samples(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 6).max(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_but_keeps_floor() {
        assert_eq!(Scale::Full.samples(900), 900);
        assert_eq!(Scale::Quick.samples(900), 150);
        assert_eq!(Scale::Quick.samples(100), 60);
    }
}
