//! Deterministic stream-corruption combinator for fault-injection testing.
//!
//! The paper's protocol assumes well-behaved streams; real deployments do
//! not get that luxury — sensors emit NaN, upstream feature extractors
//! overflow, demographic groups disappear mid-stream, a task arrives with a
//! constant column or a single class. [`poison`] turns any clean
//! [`TaskStream`] into a controlled worst case so the containment and
//! degradation layers (DESIGN.md §10) can be exercised end to end:
//! `crates/core/tests/fault_injection.rs` runs every strategy over poisoned
//! streams and asserts the protocol still spends its full budget with
//! finite metrics and byte-identical parallel results.
//!
//! Everything here is deterministic given [`PoisonSpec::seed`] — the same
//! spec applied to the same stream yields the same corrupted stream,
//! bit for bit, which is what makes degraded runs replayable.

use faction_linalg::SeedRng;

use crate::task::{Sample, TaskStream};

/// Makes one sensitive group vanish from part of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VanishGroup {
    /// The group that disappears (its samples are reassigned to the
    /// opposite group, keeping task sizes intact).
    pub sensitive: i8,
    /// First task index (stream position) the vanishing applies to; every
    /// later task is affected too. Use `0` for the whole stream.
    pub from_task: usize,
}

/// What to corrupt, and how hard. The [`Default`] spec is inert: applying
/// it reproduces the input stream exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonSpec {
    /// Seed for every stochastic corruption decision.
    pub seed: u64,
    /// Per-feature-entry probability of replacement with `NaN`.
    pub nan_rate: f64,
    /// Per-feature-entry probability of replacement with `±∞` (sign drawn
    /// uniformly).
    pub inf_rate: f64,
    /// Optionally removes one sensitive group from part of the stream.
    pub vanish_sensitive: Option<VanishGroup>,
    /// Task indices whose features are all collapsed to a single constant
    /// row (zero covariance in every direction).
    pub constant_feature_tasks: Vec<usize>,
    /// Task indices whose labels are all forced to class `0` (no class
    /// diversity for the density estimator or the trainer).
    pub single_class_tasks: Vec<usize>,
}

impl Default for PoisonSpec {
    fn default() -> Self {
        PoisonSpec {
            seed: 0,
            nan_rate: 0.0,
            inf_rate: 0.0,
            vanish_sensitive: None,
            constant_feature_tasks: Vec::new(),
            single_class_tasks: Vec::new(),
        }
    }
}

impl PoisonSpec {
    /// A spec exercising every corruption class at once — the default
    /// worst case used by the fault-injection suite.
    pub fn havoc(seed: u64) -> Self {
        PoisonSpec {
            seed,
            nan_rate: 0.02,
            inf_rate: 0.01,
            vanish_sensitive: Some(VanishGroup { sensitive: -1, from_task: 1 }),
            constant_feature_tasks: vec![0],
            single_class_tasks: vec![1],
        }
    }
}

/// Applies `spec` to a stream, returning the corrupted copy.
///
/// Corruption order per sample: constant-feature collapse, then NaN/Inf
/// entry replacement, then single-class label forcing, then group
/// vanishing — so entry-level poison also lands on collapsed tasks. The
/// RNG is drawn per feature entry in sample order, making the output a
/// pure function of `(stream, spec)`.
pub fn poison(stream: &TaskStream, spec: &PoisonSpec) -> TaskStream {
    let mut rng = SeedRng::new(spec.seed ^ 0x0150_0150_DEAD_BEEF);
    let mut out = stream.clone();
    for (t, task) in out.tasks.iter_mut().enumerate() {
        let collapse = spec.constant_feature_tasks.contains(&t);
        let force_class = spec.single_class_tasks.contains(&t);
        for sample in &mut task.samples {
            poison_sample(sample, spec, collapse, force_class, t, &mut rng);
        }
    }
    out
}

fn poison_sample(
    sample: &mut Sample,
    spec: &PoisonSpec,
    collapse: bool,
    force_class: bool,
    task_index: usize,
    rng: &mut SeedRng,
) {
    if collapse {
        // Same constant everywhere: zero variance in every direction.
        for v in &mut sample.x {
            *v = 1.0;
        }
    }
    for v in &mut sample.x {
        // Two independent draws per entry keep the stream position of
        // later decisions independent of earlier hit/miss outcomes.
        let nan_hit = rng.uniform() < spec.nan_rate;
        let inf_hit = rng.uniform() < spec.inf_rate;
        if nan_hit {
            *v = f64::NAN;
        } else if inf_hit {
            *v = if rng.uniform() < 0.5 { f64::INFINITY } else { f64::NEG_INFINITY };
        }
    }
    if force_class {
        sample.label = 0;
    }
    if let Some(vanish) = spec.vanish_sensitive {
        if task_index >= vanish.from_task && sample.sensitive == vanish.sensitive {
            sample.sensitive = -vanish.sensitive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, Scale};

    fn stream() -> TaskStream {
        let mut s = datasets::rcmnist(3, Scale::Quick);
        s.tasks.truncate(3);
        for (i, t) in s.tasks.iter_mut().enumerate() {
            t.samples.truncate(40);
            t.id = i;
        }
        s
    }

    fn feature_bits(s: &TaskStream) -> Vec<u64> {
        s.tasks
            .iter()
            .flat_map(|t| t.samples.iter())
            .flat_map(|smp| smp.x.iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn default_spec_is_identity() {
        let clean = stream();
        let out = poison(&clean, &PoisonSpec::default());
        assert_eq!(feature_bits(&clean), feature_bits(&out));
        for (a, b) in clean.tasks.iter().zip(&out.tasks) {
            for (sa, sb) in a.samples.iter().zip(&b.samples) {
                assert_eq!(sa.label, sb.label);
                assert_eq!(sa.sensitive, sb.sensitive);
            }
        }
    }

    #[test]
    fn poisoning_is_deterministic() {
        let clean = stream();
        let spec = PoisonSpec::havoc(9);
        let a = poison(&clean, &spec);
        let b = poison(&clean, &spec);
        assert_eq!(feature_bits(&a), feature_bits(&b));
    }

    #[test]
    fn nan_and_inf_rates_inject_poison() {
        let clean = stream();
        let spec = PoisonSpec { seed: 4, nan_rate: 0.1, inf_rate: 0.05, ..Default::default() };
        let out = poison(&clean, &spec);
        let total: usize = out.tasks.iter().map(|t| t.len() * out.input_dim).sum();
        let nans = feature_bits(&out)
            .iter()
            .filter(|&&b| f64::from_bits(b).is_nan())
            .count();
        let infs = feature_bits(&out)
            .iter()
            .filter(|&&b| f64::from_bits(b).is_infinite())
            .count();
        // Loose binomial bounds: both kinds must appear, at roughly the
        // configured rates.
        assert!(nans > total / 20, "{nans} NaN of {total}");
        assert!(infs > total / 100, "{infs} Inf of {total}");
    }

    #[test]
    fn vanish_empties_the_group_from_the_cut_point() {
        let clean = stream();
        let spec = PoisonSpec {
            vanish_sensitive: Some(VanishGroup { sensitive: -1, from_task: 1 }),
            ..Default::default()
        };
        let out = poison(&clean, &spec);
        assert!(out.tasks[0].samples.iter().any(|s| s.sensitive == -1));
        for t in &out.tasks[1..] {
            assert!(t.samples.iter().all(|s| s.sensitive == 1));
            // Task sizes are preserved — vanishing reassigns, not deletes.
            assert_eq!(t.len(), clean.tasks[t.id].len());
        }
    }

    #[test]
    fn constant_and_single_class_tasks_are_degenerate() {
        let clean = stream();
        let spec = PoisonSpec {
            constant_feature_tasks: vec![0],
            single_class_tasks: vec![2],
            ..Default::default()
        };
        let out = poison(&clean, &spec);
        assert!(out.tasks[0]
            .samples
            .iter()
            .all(|s| s.x.iter().all(|&v| v.to_bits() == 1.0f64.to_bits())));
        assert!(out.tasks[2].samples.iter().all(|s| s.label == 0));
        // Untargeted tasks are untouched bit for bit.
        assert_eq!(
            feature_bits(&TaskStream { tasks: vec![clean.tasks[1].clone()], ..clean.clone() }),
            feature_bits(&TaskStream { tasks: vec![out.tasks[1].clone()], ..out.clone() }),
        );
    }
}
