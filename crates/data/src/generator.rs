//! The latent-factor generative model behind every simulated dataset.
//!
//! Generation model for one sample in environment `e`:
//!
//! 1. draw the label `y ~ Bernoulli(base_rate)`;
//! 2. draw the sensitive attribute: with probability `bias(e)` it *aligns*
//!    with the label (`s = +1 ⇔ y = 1`), otherwise it anti-aligns. This is
//!    the paper's "deliberate label–color correlation" knob — `bias = 0.5`
//!    is unbiased, `0.9` highly biased;
//! 3. form the latent vector
//!    `z = y·class_dir·class_sep + s·group_dir·group_sep + ε`,
//!    with `ε ~ N(0, noise_std² I)`. The group direction is a *spurious
//!    channel*: features genuinely carry the sensitive attribute, which is
//!    what makes the (class, sensitive) density components separable and
//!    gives fairness-aware selection something to detect;
//! 4. apply the environment's affine map: `x = T_e z + m_e`. Rotations
//!    realize RCMNIST's angle environments; mean shifts realize attribute
//!    combinations (CelebA/FFHQ), geography (NYSF), and race clusters
//!    (FairFace);
//! 5. with probability `label_noise`, flip the *observed* label — the
//!    irreducible (aleatoric) part of the task.

use faction_linalg::{Matrix, SeedRng};

use crate::task::{Sample, Task, TaskStream};
use crate::Scale;

/// Per-environment generation parameters.
#[derive(Debug, Clone)]
pub struct EnvironmentSpec {
    /// Environment name, used to label tasks (e.g. `"rot30"`).
    pub name: String,
    /// Affine transform `T_e` applied to latent vectors (must be `d × d`).
    pub transform: Matrix,
    /// Mean shift `m_e` added after the transform (length `d`).
    pub mean_shift: Vec<f64>,
    /// Probability the sensitive attribute aligns with the label
    /// (`0.5` = independent, `0.9` = strongly biased).
    pub bias: f64,
    /// Fraction of labels flipped after generation (aleatoric noise).
    pub label_noise: f64,
    /// Marginal probability of `y = 1` before alignment.
    pub base_rate: f64,
    /// Samples generated per task in this environment (at `Scale::Full`).
    pub samples_per_task: usize,
    /// Number of consecutive tasks drawn from this environment.
    pub tasks: usize,
}

impl EnvironmentSpec {
    /// A neutral environment: identity transform, no shift, balanced labels.
    pub fn neutral(name: impl Into<String>, dim: usize, samples_per_task: usize, tasks: usize) -> Self {
        EnvironmentSpec {
            name: name.into(),
            transform: Matrix::identity(dim),
            mean_shift: vec![0.0; dim],
            bias: 0.5,
            label_noise: 0.05,
            base_rate: 0.5,
            samples_per_task,
            tasks,
        }
    }
}

/// Stream-level generation parameters shared by all environments.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Dataset name.
    pub name: String,
    /// Feature dimensionality `d`.
    pub input_dim: usize,
    /// Distance between class means along the class direction.
    pub class_separation: f64,
    /// Distance between group means along the (orthogonal) group direction.
    pub group_separation: f64,
    /// Isotropic latent noise standard deviation.
    pub noise_std: f64,
    /// Ordered environments; the stream visits them in sequence.
    pub environments: Vec<EnvironmentSpec>,
}

impl StreamSpec {
    /// Generates the full task stream deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if an environment's transform/mean shift disagrees with
    /// `input_dim` (a spec-construction bug).
    pub fn generate(&self, seed: u64, scale: Scale) -> TaskStream {
        let d = self.input_dim;
        let mut rng = SeedRng::new(seed);
        // Class and group directions: fixed unit vectors. Axis 0 carries the
        // class signal, axis 1 the group signal; environment transforms mix
        // them into all coordinates.
        let mut class_dir = vec![0.0; d];
        class_dir[0] = 1.0;
        let mut group_dir = vec![0.0; d];
        group_dir[1.min(d - 1)] = 1.0;

        let mut tasks = Vec::new();
        let mut task_id = 0;
        for (env_idx, env) in self.environments.iter().enumerate() {
            assert_eq!(env.transform.shape(), (d, d), "environment transform shape");
            assert_eq!(env.mean_shift.len(), d, "environment mean shift length");
            for _ in 0..env.tasks {
                let n = scale.samples(env.samples_per_task);
                let mut task_rng = rng.fork(task_id as u64);
                let samples = (0..n)
                    .map(|_| {
                        self.generate_sample(&mut task_rng, env, env_idx, &class_dir, &group_dir)
                    })
                    .collect();
                tasks.push(Task {
                    id: task_id,
                    env: env_idx,
                    env_name: env.name.clone(),
                    samples,
                });
                task_id += 1;
            }
        }
        TaskStream {
            name: self.name.clone(),
            input_dim: d,
            num_classes: 2,
            tasks,
        }
    }

    fn generate_sample(
        &self,
        rng: &mut SeedRng,
        env: &EnvironmentSpec,
        env_idx: usize,
        class_dir: &[f64],
        group_dir: &[f64],
    ) -> Sample {
        let d = self.input_dim;
        // 1. True label.
        let y_true = usize::from(rng.bernoulli(env.base_rate));
        // 2. Sensitive attribute, aligned with the label with prob `bias`.
        let aligned = rng.bernoulli(env.bias);
        let sensitive: i8 = match (y_true == 1, aligned) {
            (true, true) | (false, false) => 1,
            _ => -1,
        };
        // 3. Latent vector.
        let y_sign = if y_true == 1 { 0.5 } else { -0.5 };
        let s_sign = 0.5 * f64::from(sensitive);
        let mut z = rng.standard_normal_vec(d);
        faction_linalg::vector::scale(&mut z, self.noise_std);
        faction_linalg::vector::axpy(y_sign * self.class_separation, class_dir, &mut z);
        faction_linalg::vector::axpy(s_sign * self.group_separation, group_dir, &mut z);
        // 4. Environment affine map.
        // analyzer:allow(unwrap-in-lib): `transform` is built d×d for this generator's d
        let mut x = env.transform.matvec(&z).expect("transform shape checked");
        faction_linalg::vector::axpy(1.0, &env.mean_shift, &mut x);
        // 5. Aleatoric label noise.
        let label = if rng.bernoulli(env.label_noise) { 1 - y_true } else { y_true };
        Sample { x, sensitive, label, env: env_idx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec(bias: f64) -> StreamSpec {
        let dim = 6;
        StreamSpec {
            name: "toy".into(),
            input_dim: dim,
            class_separation: 4.0,
            group_separation: 2.0,
            noise_std: 0.5,
            environments: vec![
                EnvironmentSpec { bias, ..EnvironmentSpec::neutral("e0", dim, 300, 2) },
                EnvironmentSpec {
                    bias,
                    mean_shift: vec![3.0; dim],
                    ..EnvironmentSpec::neutral("e1", dim, 300, 2)
                },
            ],
        }
    }

    #[test]
    fn stream_shape_matches_spec() {
        let stream = toy_spec(0.5).generate(1, Scale::Full);
        assert_eq!(stream.len(), 4);
        assert_eq!(stream.num_environments(), 2);
        assert_eq!(stream.input_dim, 6);
        assert!(stream.tasks.iter().all(|t| t.len() == 300));
        assert_eq!(stream.tasks[0].env_name, "e0");
        assert_eq!(stream.tasks[3].env_name, "e1");
        // Task ids are sequential.
        for (i, t) in stream.tasks.iter().enumerate() {
            assert_eq!(t.id, i);
        }
    }

    #[test]
    fn determinism() {
        let a = toy_spec(0.7).generate(42, Scale::Quick);
        let b = toy_spec(0.7).generate(42, Scale::Quick);
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(ta.samples, tb.samples);
        }
        let c = toy_spec(0.7).generate(43, Scale::Quick);
        assert_ne!(a.tasks[0].samples, c.tasks[0].samples);
    }

    #[test]
    fn bias_controls_alignment() {
        let biased = toy_spec(0.9).generate(7, Scale::Full);
        let unbiased = toy_spec(0.5).generate(7, Scale::Full);
        let align_biased = biased.tasks[0].label_sensitive_alignment();
        let align_unbiased = unbiased.tasks[0].label_sensitive_alignment();
        // Label noise (5%) slightly decouples the observed label, so the
        // alignment target is bias*(1-noise) + (1-bias)*noise ≈ 0.86.
        assert!(align_biased > 0.8, "biased alignment {align_biased}");
        assert!((align_unbiased - 0.5).abs() < 0.08, "unbiased alignment {align_unbiased}");
    }

    #[test]
    fn environment_shift_moves_features() {
        let stream = toy_spec(0.5).generate(3, Scale::Full);
        let mean_of = |task: &crate::task::Task| {
            let f = task.features();
            f.as_slice().iter().sum::<f64>() / f.as_slice().len() as f64
        };
        let m0 = mean_of(&stream.tasks[0]);
        let m3 = mean_of(&stream.tasks[3]);
        assert!((m3 - m0) > 2.0, "env shift must move the mean: {m0} vs {m3}");
    }

    #[test]
    fn classes_are_separable_in_latent_space() {
        let stream = toy_spec(0.5).generate(5, Scale::Full);
        let task = &stream.tasks[0];
        // Mean of axis 0 (class direction) per class should differ by
        // roughly class_separation.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for s in &task.samples {
            sums[s.label] += s.x[0];
            counts[s.label] += 1;
        }
        let gap = sums[1] / counts[1] as f64 - sums[0] / counts[0] as f64;
        // 5% label flips shrink the observed gap slightly below 4.0.
        assert!(gap > 2.5, "class gap {gap}");
    }

    #[test]
    fn groups_are_separated_in_latent_space() {
        let stream = toy_spec(0.5).generate(9, Scale::Full);
        let task = &stream.tasks[0];
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for s in &task.samples {
            let gi = usize::from(s.sensitive > 0);
            sums[gi] += s.x[1];
            counts[gi] += 1;
        }
        let gap = sums[1] / counts[1] as f64 - sums[0] / counts[0] as f64;
        assert!(gap > 1.0, "group gap {gap}");
    }

    #[test]
    fn label_noise_bounds_accuracy_ceiling() {
        let dim = 4;
        let spec = StreamSpec {
            name: "noisy".into(),
            input_dim: dim,
            class_separation: 10.0,
            group_separation: 0.0,
            noise_std: 0.01,
            environments: vec![EnvironmentSpec {
                label_noise: 0.25,
                ..EnvironmentSpec::neutral("e", dim, 2000, 1)
            }],
        };
        let stream = spec.generate(11, Scale::Full);
        // With huge separation the latent class is recoverable from sign of
        // x[0]; the observed label should disagree ~25% of the time.
        let task = &stream.tasks[0];
        let disagree = task
            .samples
            .iter()
            .filter(|s| (s.x[0] > 0.0) != (s.label == 1))
            .count() as f64
            / task.len() as f64;
        assert!((disagree - 0.25).abs() < 0.04, "disagree {disagree}");
    }
}
