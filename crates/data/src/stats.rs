//! Descriptive statistics over task streams.
//!
//! The paper's dataset section (V-A1) characterizes each benchmark by its
//! environment structure, label–sensitive correlation, and group balance.
//! This module computes those characteristics from any [`TaskStream`], so
//! the simulated benchmarks can be audited against their specs (tests do
//! exactly that) and users can profile their own streams before running
//! experiments.

use std::collections::BTreeMap;

use crate::task::{Task, TaskStream};

/// Per-task descriptive statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStats {
    /// Task position.
    pub task_id: usize,
    /// Environment name.
    pub env_name: String,
    /// Sample count.
    pub samples: usize,
    /// Fraction of positive labels.
    pub positive_rate: f64,
    /// Fraction per sensitive group code.
    pub group_fractions: BTreeMap<i8, f64>,
    /// Label–sensitive alignment (0.5 = independent; see
    /// [`Task::label_sensitive_alignment`]).
    pub alignment: f64,
    /// Mean feature vector (used for shift-magnitude computations).
    pub feature_mean: Vec<f64>,
}

/// Computes statistics for one task.
///
/// # Panics
/// Panics on an empty task (nothing to describe).
pub fn task_stats(task: &Task) -> TaskStats {
    assert!(!task.is_empty(), "task_stats: empty task");
    let n = task.len() as f64;
    let positive_rate = task.samples.iter().filter(|s| s.label == 1).count() as f64 / n;
    let mut group_counts: BTreeMap<i8, usize> = BTreeMap::new();
    for s in &task.samples {
        *group_counts.entry(s.sensitive).or_insert(0) += 1;
    }
    let group_fractions =
        group_counts.into_iter().map(|(g, c)| (g, c as f64 / n)).collect();
    let d = task.samples[0].x.len();
    let mut feature_mean = vec![0.0; d];
    for s in &task.samples {
        faction_linalg::vector::axpy(1.0, &s.x, &mut feature_mean);
    }
    faction_linalg::vector::scale(&mut feature_mean, 1.0 / n);
    TaskStats {
        task_id: task.id,
        env_name: task.env_name.clone(),
        samples: task.len(),
        positive_rate,
        group_fractions,
        alignment: task.label_sensitive_alignment(),
        feature_mean,
    }
}

/// Stream-level profile: per-task stats plus consecutive-task shift
/// magnitudes (Euclidean distance of feature means).
#[derive(Debug, Clone)]
pub struct StreamProfile {
    /// Dataset name.
    pub name: String,
    /// Per-task statistics in stream order.
    pub tasks: Vec<TaskStats>,
    /// `‖mean_t − mean_{t−1}‖` for `t ≥ 1` (length `T − 1`).
    pub mean_shifts: Vec<f64>,
}

impl StreamProfile {
    /// Profiles a whole stream.
    pub fn of(stream: &TaskStream) -> StreamProfile {
        let tasks: Vec<TaskStats> = stream.tasks.iter().map(task_stats).collect();
        let mean_shifts = tasks
            .windows(2)
            .map(|w| {
                faction_linalg::vector::norm2(&faction_linalg::vector::sub(
                    &w[1].feature_mean,
                    &w[0].feature_mean,
                ))
            })
            .collect();
        StreamProfile { name: stream.name.clone(), tasks, mean_shifts }
    }

    /// Indices (into `mean_shifts`) of the `k` largest shifts — candidate
    /// environment boundaries.
    pub fn largest_shifts(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.mean_shifts.len()).collect();
        order.sort_by(|&a, &b| {
            self.mean_shifts[b]
                .partial_cmp(&self.mean_shifts[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(k);
        order
    }

    /// Renders a fixed-width profile table.
    pub fn render(&self) -> String {
        let mut out = format!("stream profile: {}\n", self.name);
        out.push_str(&format!(
            "{:<6} {:<16} {:>8} {:>8} {:>10} {:>10}\n",
            "task", "environment", "samples", "pos-rate", "alignment", "shift"
        ));
        for (i, t) in self.tasks.iter().enumerate() {
            let shift = if i == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", self.mean_shifts[i - 1])
            };
            out.push_str(&format!(
                "{:<6} {:<16} {:>8} {:>8.3} {:>10.3} {:>10}\n",
                t.task_id, t.env_name, t.samples, t.positive_rate, t.alignment, shift
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::Scale;

    #[test]
    fn rcmnist_profile_matches_spec() {
        let stream = datasets::rcmnist(1, Scale::Full);
        let profile = StreamProfile::of(&stream);
        assert_eq!(profile.tasks.len(), 12);
        // Alignment decays across the bias schedule {0.9, …, 0.6}.
        assert!(profile.tasks[0].alignment > profile.tasks[11].alignment + 0.1);
        // Positive rate near 0.5 everywhere.
        for t in &profile.tasks {
            assert!((t.positive_rate - 0.5).abs() < 0.08, "task {} rate {}", t.task_id, t.positive_rate);
        }
    }

    #[test]
    fn environment_boundaries_have_largest_shifts() {
        // NYSF: area changes at tasks 4, 8, 12 → shift indices 3, 7, 11
        // should dominate.
        let stream = datasets::nysf(2, Scale::Full);
        let profile = StreamProfile::of(&stream);
        let mut top = profile.largest_shifts(3);
        top.sort_unstable();
        assert_eq!(top, vec![3, 7, 11], "area boundaries must be the largest shifts");
    }

    #[test]
    fn group_fractions_sum_to_one() {
        let stream = datasets::celeba(3, Scale::Quick);
        for t in &stream.tasks {
            let stats = task_stats(t);
            let total: f64 = stats.group_fractions.values().sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn render_contains_all_tasks() {
        let stream = datasets::ffhq(4, Scale::Quick);
        let table = StreamProfile::of(&stream).render();
        assert!(table.contains("FFHQ"));
        assert!(table.contains("happy"));
        assert_eq!(table.lines().count(), 2 + stream.len());
    }

    #[test]
    #[should_panic(expected = "empty task")]
    fn empty_task_panics() {
        let task = Task { id: 0, env: 0, env_name: "e".into(), samples: vec![] };
        task_stats(&task);
    }
}
