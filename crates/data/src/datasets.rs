//! The five simulated benchmark streams of the paper's evaluation
//! (Sec. V-A1), plus a registry for harness binaries.
//!
//! Environment *geometry* (transforms, shift directions) is fixed per
//! dataset — it is part of the benchmark definition — while the sampled
//! data varies with the caller's seed, mirroring how the paper repeats five
//! runs over fixed datasets.

use faction_linalg::rng::block_rotation;
use faction_linalg::SeedRng;

use crate::generator::{EnvironmentSpec, StreamSpec};
use crate::task::TaskStream;
use crate::Scale;

/// Identifies one of the five simulated benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Rotated Colored MNIST: 4 rotation environments × 3 tasks.
    Rcmnist,
    /// CelebA: 4 (Young × Smiling) environments × 3 tasks.
    CelebA,
    /// FairFace: 7 race environments × 3 tasks.
    FairFace,
    /// FFHQ-Features: 4 facial-expression environments × 3 tasks.
    Ffhq,
    /// NY Stop-and-Frisk: 4 areas × 4 quarterly drifts, 1 task each.
    Nysf,
}

impl Dataset {
    /// All five benchmarks in the paper's presentation order.
    pub const ALL: [Dataset; 5] =
        [Dataset::Rcmnist, Dataset::CelebA, Dataset::FairFace, Dataset::Ffhq, Dataset::Nysf];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Rcmnist => "RCMNIST",
            Dataset::CelebA => "CelebA",
            Dataset::FairFace => "FairFace",
            Dataset::Ffhq => "FFHQ-Features",
            Dataset::Nysf => "NYSF",
        }
    }

    /// Parses a (case-insensitive) dataset name.
    pub fn from_name(name: &str) -> Option<Dataset> {
        match name.to_ascii_lowercase().as_str() {
            "rcmnist" | "rotated-colored-mnist" => Some(Dataset::Rcmnist),
            "celeba" => Some(Dataset::CelebA),
            "fairface" => Some(Dataset::FairFace),
            "ffhq" | "ffhq-features" => Some(Dataset::Ffhq),
            "nysf" | "stop-and-frisk" => Some(Dataset::Nysf),
            _ => None,
        }
    }

    /// Generates the stream for this benchmark.
    pub fn stream(&self, seed: u64, scale: Scale) -> TaskStream {
        match self {
            Dataset::Rcmnist => rcmnist(seed, scale),
            Dataset::CelebA => celeba(seed, scale),
            Dataset::FairFace => fairface(seed, scale),
            Dataset::Ffhq => ffhq(seed, scale),
            Dataset::Nysf => nysf(seed, scale),
        }
    }
}

/// Deterministic unit vector for environment mean shifts: geometry is part
/// of the benchmark, so it uses a fixed internal seed per (dataset, index).
fn shift_direction(dataset_tag: u64, index: u64, dim: usize, magnitude: f64) -> Vec<f64> {
    let mut rng = SeedRng::new(0xFAC7_1000 ^ (dataset_tag << 8) ^ index);
    let mut v = rng.standard_normal_vec(dim);
    let n = faction_linalg::vector::norm2(&v).max(f64::MIN_POSITIVE);
    faction_linalg::vector::scale(&mut v, magnitude / n);
    v
}

/// *Rotated Colored MNIST* (paper: 10,000 digits, rotations
/// `{0°, 15°, 30°, 45°}` as environments, digit color as the sensitive
/// attribute with label–color correlations `{0.9, 0.8, 0.7, 0.6}`, three
/// tasks per rotation → 12 sequential tasks).
///
/// Simulation: 16-d latent digits; each rotation environment applies the
/// corresponding block rotation of the latent space; the bias coefficient of
/// each environment matches the paper's correlation schedule exactly.
pub fn rcmnist(seed: u64, scale: Scale) -> TaskStream {
    let dim = 16;
    let angles_deg = [0.0f64, 15.0, 30.0, 45.0];
    let biases = [0.9, 0.8, 0.7, 0.6];
    let environments = angles_deg
        .iter()
        .zip(&biases)
        .map(|(&deg, &bias)| EnvironmentSpec {
            name: format!("rot{deg:.0}"),
            transform: block_rotation(dim, deg.to_radians()),
            mean_shift: vec![0.0; dim],
            bias,
            label_noise: 0.05,
            base_rate: 0.5,
            samples_per_task: 830, // ≈ 10,000 / (4 envs × 3 tasks)
            tasks: 3,
        })
        .collect();
    StreamSpec {
        name: "RCMNIST".into(),
        input_dim: dim,
        class_separation: 3.0,
        group_separation: 2.0,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, scale)
}

/// *CelebA* (paper: four environments from Young × Smiling combinations,
/// Male as the sensitive attribute, Attractiveness as the label, three tasks
/// per environment → 12 tasks).
///
/// Simulation: 32-d latent face attributes; each attribute combination
/// shifts the latent mean along its own fixed direction with a mild
/// environment-specific rotation. Attractiveness labels carry substantial
/// aleatoric noise (subjective annotation) and a moderate gender bias.
pub fn celeba(seed: u64, scale: Scale) -> TaskStream {
    let dim = 32;
    let combos = ["young-smiling", "young-serious", "old-smiling", "old-serious"];
    let environments = combos
        .iter()
        .enumerate()
        .map(|(i, name)| EnvironmentSpec {
            name: (*name).into(),
            transform: block_rotation(dim, 0.12 * i as f64),
            mean_shift: shift_direction(1, i as u64, dim, 2.5),
            bias: 0.65,
            label_noise: 0.08,
            base_rate: 0.5,
            samples_per_task: 800,
            tasks: 3,
        })
        .collect();
    StreamSpec {
        name: "CelebA".into(),
        input_dim: dim,
        class_separation: 2.6,
        group_separation: 2.2,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, scale)
}

/// *FairFace* (paper: seven racial groups as environments, gender as the
/// sensitive attribute, age > 50 as the binary label, three tasks per race
/// → 21 tasks).
///
/// Simulation: 24-d latents; each race environment gets its own rotation
/// *and* mean shift (face distributions differ in geometry, not just
/// location), the label base rate is low (older faces are the minority
/// class in FairFace), and the gender–age bias is moderate.
pub fn fairface(seed: u64, scale: Scale) -> TaskStream {
    let dim = 24;
    let races =
        ["white", "black", "latino", "east-asian", "southeast-asian", "indian", "middle-eastern"];
    let environments = races
        .iter()
        .enumerate()
        .map(|(i, name)| EnvironmentSpec {
            name: (*name).into(),
            transform: block_rotation(dim, 0.18 * i as f64),
            mean_shift: shift_direction(2, i as u64, dim, 2.0),
            bias: 0.6,
            label_noise: 0.06,
            base_rate: 0.3,
            samples_per_task: 700,
            tasks: 3,
        })
        .collect();
    StreamSpec {
        name: "FairFace".into(),
        input_dim: dim,
        class_separation: 2.8,
        group_separation: 1.8,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, scale)
}

/// *FFHQ-Features* (paper: the four most common facial expressions as
/// environments, age > 50 as the label, gender as the sensitive attribute,
/// three tasks per expression → 12 tasks; rare expressions like "contempt"
/// were dropped for having fewer samples than the budget — the simulation
/// keeps only the four kept environments, like the paper).
pub fn ffhq(seed: u64, scale: Scale) -> TaskStream {
    let dim = 24;
    let expressions = ["happy", "neutral", "surprise", "sad"];
    let environments = expressions
        .iter()
        .enumerate()
        .map(|(i, name)| EnvironmentSpec {
            name: (*name).into(),
            transform: block_rotation(dim, 0.1 + 0.15 * i as f64),
            mean_shift: shift_direction(3, i as u64, dim, 2.2),
            bias: 0.6,
            label_noise: 0.06,
            base_rate: 0.35,
            samples_per_task: 750,
            tasks: 3,
        })
        .collect();
    StreamSpec {
        name: "FFHQ-Features".into(),
        input_dim: dim,
        class_separation: 2.8,
        group_separation: 1.8,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, scale)
}

/// *New York Stop-and-Frisk* (paper: geographic areas give distinct
/// distributions, each further split into yearly quarters for temporal
/// drift → 16 tasks; race (black / non-black) is the sensitive attribute
/// and "was the individual frisked" the label; under-sized environments
/// like some Staten Island quarters were removed, leaving 4 areas).
///
/// Simulation: 16-d tabular records; each area is a large mean shift, each
/// quarter within an area adds incremental drift (small shift plus a slight
/// rotation). The strong historical racial disparity is modeled with a high
/// bias coefficient, and frisk decisions carry heavy aleatoric noise.
pub fn nysf(seed: u64, scale: Scale) -> TaskStream {
    let dim = 16;
    let areas = ["bronx", "brooklyn", "manhattan", "queens"];
    let mut environments = Vec::new();
    for (a, area) in areas.iter().enumerate() {
        let area_shift = shift_direction(4, a as u64, dim, 3.0);
        for q in 0..4 {
            let mut mean_shift = area_shift.clone();
            let drift = shift_direction(4, 100 + (a * 4 + q) as u64, dim, 0.5 * q as f64);
            faction_linalg::vector::axpy(1.0, &drift, &mut mean_shift);
            environments.push(EnvironmentSpec {
                name: format!("{area}-Q{}", q + 1),
                transform: block_rotation(dim, 0.2 * a as f64 + 0.05 * q as f64),
                mean_shift,
                bias: 0.66,
                label_noise: 0.1,
                base_rate: 0.4,
                samples_per_task: 900,
                tasks: 1,
            });
        }
    }
    StreamSpec {
        name: "NYSF".into(),
        input_dim: dim,
        class_separation: 2.4,
        group_separation: 2.0,
        noise_std: 1.0,
        environments,
    }
    .generate(seed, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_match_paper() {
        let scale = Scale::Quick;
        assert_eq!(rcmnist(0, scale).len(), 12);
        assert_eq!(celeba(0, scale).len(), 12);
        assert_eq!(fairface(0, scale).len(), 21);
        assert_eq!(ffhq(0, scale).len(), 12);
        assert_eq!(nysf(0, scale).len(), 16);
    }

    #[test]
    fn environment_counts_match_paper() {
        let scale = Scale::Quick;
        assert_eq!(rcmnist(0, scale).num_environments(), 4);
        assert_eq!(celeba(0, scale).num_environments(), 4);
        assert_eq!(fairface(0, scale).num_environments(), 7);
        assert_eq!(ffhq(0, scale).num_environments(), 4);
        assert_eq!(nysf(0, scale).num_environments(), 16);
    }

    #[test]
    fn rcmnist_bias_schedule_decreases() {
        let stream = rcmnist(1, Scale::Full);
        // First env (rot0, bias .9) tasks must be more aligned than last
        // env (rot45, bias .6) tasks.
        let first = stream.tasks[0].label_sensitive_alignment();
        let last = stream.tasks[11].label_sensitive_alignment();
        assert!(first > 0.8, "first-env alignment {first}");
        assert!(last < first - 0.15, "alignment must decay: {first} -> {last}");
    }

    #[test]
    fn full_tasks_exceed_budget_requirement() {
        // Paper requirement: every task must have more unlabeled samples
        // than the AL budget B = 200.
        for ds in Dataset::ALL {
            let stream = ds.stream(2, Scale::Full);
            for task in &stream.tasks {
                assert!(task.len() > 200, "{} task {} too small", stream.name, task.id);
            }
        }
    }

    #[test]
    fn registry_roundtrip() {
        for ds in Dataset::ALL {
            assert_eq!(Dataset::from_name(ds.name()), Some(ds));
        }
        assert_eq!(Dataset::from_name("nope"), None);
        assert_eq!(Dataset::from_name("NYSF"), Some(Dataset::Nysf));
    }

    #[test]
    fn nysf_has_high_bias() {
        let stream = nysf(3, Scale::Full);
        let mean_align: f64 = stream
            .tasks
            .iter()
            .map(|t| t.label_sensitive_alignment())
            .sum::<f64>()
            / stream.len() as f64;
        // bias 0.75 with 10% label noise → expected alignment ≈ 0.7.
        assert!(mean_align > 0.62, "mean alignment {mean_align}");
    }

    #[test]
    fn fairface_minority_label_rate() {
        let stream = fairface(4, Scale::Full);
        let total: usize = stream.tasks.iter().map(|t| t.len()).sum();
        let positives: usize =
            stream.tasks.iter().flat_map(|t| t.samples.iter()).filter(|s| s.label == 1).count();
        let rate = positives as f64 / total as f64;
        // base_rate 0.3 with 6% symmetric flips → ≈ 0.31.
        assert!((rate - 0.31).abs() < 0.05, "positive rate {rate}");
    }

    #[test]
    fn geometry_is_seed_independent_but_data_is_not() {
        let a = celeba(1, Scale::Quick);
        let b = celeba(2, Scale::Quick);
        // Same environment names in the same order…
        let names_a: Vec<&str> = a.tasks.iter().map(|t| t.env_name.as_str()).collect();
        let names_b: Vec<&str> = b.tasks.iter().map(|t| t.env_name.as_str()).collect();
        assert_eq!(names_a, names_b);
        // …different samples.
        assert_ne!(a.tasks[0].samples, b.tasks[0].samples);
    }
}
